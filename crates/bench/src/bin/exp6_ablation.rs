//! Ablation study (beyond the paper's figures, motivated by §3.4 / §5):
//! benefit-oriented optimizations on/off and eviction-policy alternatives.
//!
//! ```text
//! cargo run -p hashstash-bench --bin exp6_ablation --release
//! ```

use hashstash::{Engine, EngineConfig};
use hashstash_bench::common::{catalog, header, ms, seed};
use hashstash_cache::{EvictionPolicy, GcConfig};
use hashstash_workload::trace::{generate_trace, ReusePotential, TraceConfig};

fn run_with(cfg: EngineConfig, trace: &[hashstash_workload::trace::TraceQuery]) -> (f64, u64, u64) {
    let mut engine = Engine::new(catalog(), cfg);
    let t0 = std::time::Instant::now();
    for tq in trace {
        engine.execute(&tq.query).expect("query");
    }
    (
        ms(t0.elapsed()),
        engine.cache_stats().reuses,
        engine.cache_stats().evictions,
    )
}

fn main() {
    header("Ablation: benefit-oriented optimizations (paper §3.4)");
    let trace = generate_trace(TraceConfig::paper(ReusePotential::High, seed()));
    println!("{:<34} {:>12} {:>8}", "configuration", "time (ms)", "reuses");
    let variants: [(&str, fn(&mut EngineConfig)); 4] = [
        ("all benefit optimizations ON", |_| {}),
        ("AVG rewrite OFF", |c| c.avg_rewrite = false),
        ("additional attributes OFF", |c| {
            c.additional_attributes = false
        }),
        ("benefit join order OFF", |c| c.benefit_join_order = false),
    ];
    for (name, tweak) in variants {
        let mut cfg = EngineConfig::default();
        tweak(&mut cfg);
        let (t, reuses, _) = run_with(cfg, &trace);
        println!("{name:<34} {t:>10.1}ms {reuses:>8}");
    }

    header("Ablation: eviction policies under memory pressure (paper §5)");
    // Peak footprint of an unbounded run sets the pressure level.
    let (_, _, _) = {
        let mut engine = Engine::new(catalog(), EngineConfig::default());
        for tq in &trace {
            engine.execute(&tq.query).expect("query");
        }
        let peak = engine.cache_stats().peak_bytes;
        println!(
            "{:<34} {:>12} {:>8} {:>10}",
            "policy (30% budget)", "time (ms)", "reuses", "evictions"
        );
        for (name, policy) in [
            ("LRU (paper's choice)", EvictionPolicy::Lru),
            ("LFU", EvictionPolicy::Lfu),
            ("benefit-weighted", EvictionPolicy::BenefitWeighted),
        ] {
            let mut cfg = EngineConfig::default();
            cfg.gc = GcConfig {
                budget_bytes: Some((peak as f64 * 0.3) as usize),
                policy,
                fine_grained: false,
            };
            let (t, reuses, evictions) = run_with(cfg, &trace);
            println!("{name:<34} {t:>10.1}ms {reuses:>8} {evictions:>10}");
        }
        (0.0, 0, 0)
    };
}
