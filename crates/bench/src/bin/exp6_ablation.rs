//! Ablation study (beyond the paper's figures, motivated by §3.4 / §5):
//! benefit-oriented optimizations on/off and eviction-policy alternatives.
//!
//! ```text
//! cargo run -p hashstash-bench --bin exp6_ablation --release
//! ```

use hashstash::{Database, EngineBuilder};
use hashstash_bench::common::{catalog, header, ms, seed};
use hashstash_cache::{EvictionPolicy, GcConfig};
use hashstash_workload::trace::{generate_trace, ReusePotential, TraceConfig};

/// One ablation variant: tweaks the builder before the run.
type Variant = fn(EngineBuilder) -> EngineBuilder;

fn run_with(
    configure: impl FnOnce(EngineBuilder) -> EngineBuilder,
    trace: &[hashstash_workload::trace::TraceQuery],
) -> (f64, u64, u64) {
    let db = configure(Database::builder(catalog())).build();
    let mut session = db.session();
    let t0 = std::time::Instant::now();
    for tq in trace {
        session.execute(&tq.query).expect("query");
    }
    (
        ms(t0.elapsed()),
        db.cache_stats().reuses,
        db.cache_stats().evictions,
    )
}

fn main() {
    header("Ablation: benefit-oriented optimizations (paper §3.4)");
    let trace = generate_trace(TraceConfig::paper(ReusePotential::High, seed()));
    println!(
        "{:<34} {:>12} {:>8}",
        "configuration", "time (ms)", "reuses"
    );
    let variants: [(&str, Variant); 4] = [
        ("all benefit optimizations ON", |b| b),
        ("AVG rewrite OFF", |b| b.avg_rewrite(false)),
        ("additional attributes OFF", |b| {
            b.additional_attributes(false)
        }),
        ("benefit join order OFF", |b| b.benefit_join_order(false)),
    ];
    for (name, tweak) in variants {
        let (t, reuses, _) = run_with(tweak, &trace);
        println!("{name:<34} {t:>10.1}ms {reuses:>8}");
    }

    header("Ablation: eviction policies under memory pressure (paper §5)");
    // Peak footprint of an unbounded run sets the pressure level.
    {
        let db = Database::open(catalog());
        let mut session = db.session();
        for tq in &trace {
            session.execute(&tq.query).expect("query");
        }
        let peak = db.cache_stats().peak_bytes;
        println!(
            "{:<34} {:>12} {:>8} {:>10}",
            "policy (30% budget)", "time (ms)", "reuses", "evictions"
        );
        for (name, policy) in [
            ("LRU (paper's choice)", EvictionPolicy::Lru),
            ("LFU", EvictionPolicy::Lfu),
            ("benefit-weighted", EvictionPolicy::BenefitWeighted),
        ] {
            let gc = GcConfig {
                budget_bytes: Some((peak as f64 * 0.3) as usize),
                policy,
                ..GcConfig::default()
            };
            let (t, reuses, evictions) = run_with(move |b| b.gc(gc), &trace);
            println!("{name:<34} {t:>10.1}ms {reuses:>8} {evictions:>10}");
        }
    }
}
