//! Exp 10: warm restart of the reuse cache (durability subsystem).
//!
//! A durable engine (`EngineBuilder::data_dir`) persists the catalog and a
//! benefit-scored subset of the reuse cache via WAL + snapshots. This
//! experiment measures what that buys: **time to the first reuse hit**
//! after a restart, warm (rehydrated cache) vs cold (fresh engine that
//! must rebuild its hash tables from scratch).
//!
//! Protocol: run the Fig. 7-style medium-reuse trace on a durable engine,
//! flush, drop it (clean exit), reopen the data directory with an *empty*
//! catalog — recovery rebuilds catalog and cache — and replay the trace,
//! timing how long until a query's plan first reuses a cached table. The
//! cold baseline replays the identical trace on a fresh in-memory engine.
//!
//! Output: a human-readable table plus `BENCH_restart.json` (uploaded by
//! CI as an artifact); the JSON records the fsync policy in effect. Smoke
//! mode (`HASHSTASH_SMOKE=1`) shrinks the trace and forces `fsync=none`
//! so the run finishes in seconds on a 1-core container; override the
//! policy with `HASHSTASH_FSYNC=none|interval|always`.

use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use hashstash::durability::FsyncPolicy;
use hashstash::Database;
use hashstash_bench::common::{catalog, header, mb, ms, seed};
use hashstash_storage::Catalog;
use hashstash_workload::trace::{generate_trace, ReusePotential, TraceConfig};

fn smoke() -> bool {
    std::env::var("HASHSTASH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Execute the trace until a query's plan reuses a cached table; returns
/// (elapsed ms, 1-based query index of the first hit, or 0 if none hit).
fn time_to_first_hit(
    db: &Arc<Database>,
    trace: &[hashstash_workload::trace::TraceQuery],
) -> (f64, usize) {
    let mut session = db.session();
    let t0 = Instant::now();
    for (i, tq) in trace.iter().enumerate() {
        let r = session
            .execute(&tq.query)
            .unwrap_or_else(|e| panic!("query {} failed: {e}", tq.query.id));
        if r.decisions.iter().any(|(_, c)| c.is_some()) {
            return (ms(t0.elapsed()), i + 1);
        }
    }
    (ms(t0.elapsed()), 0)
}

fn dir_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

fn main() {
    let smoke = smoke();
    let trace_len = if smoke { 16 } else { 48 };
    let fsync = std::env::var("HASHSTASH_FSYNC")
        .ok()
        .and_then(|s| FsyncPolicy::parse(&s))
        .unwrap_or(if smoke {
            FsyncPolicy::None
        } else {
            FsyncPolicy::Interval
        });

    header("Exp 10: warm restart of the reuse cache (WAL + snapshot recovery)");
    println!("fsync policy: {}", fsync.name());

    let trace = generate_trace(TraceConfig {
        queries: trace_len,
        ..TraceConfig::paper(ReusePotential::Medium, seed())
    });

    // Cold baseline: a fresh in-memory engine replays the trace; the first
    // reuse hit requires building the table within the measured window.
    let cold_db = Database::builder(catalog()).build();
    let (cold_ms, cold_q) = time_to_first_hit(&cold_db, &trace);
    drop(cold_db);

    // Populate a durable engine, then exit cleanly (explicit flush).
    let dir = std::env::temp_dir().join(format!("hashstash_exp10_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let persisted;
    {
        let db = Database::builder(catalog())
            .data_dir(&dir)
            .fsync(fsync)
            .build();
        let mut session = db.session();
        let t0 = Instant::now();
        for tq in &trace {
            session
                .execute(&tq.query)
                .unwrap_or_else(|e| panic!("query {} failed: {e}", tq.query.id));
        }
        let populate = t0.elapsed();
        let t1 = Instant::now();
        db.flush().expect("flush");
        persisted = db.cache_stats().entries;
        println!(
            "populate: {:.1} ms over {trace_len} queries, flush: {:.1} ms, \
             {} cache entries persisted",
            ms(populate),
            ms(t1.elapsed()),
            persisted
        );
    }
    let disk_mb = mb(dir_bytes(&dir) as usize);

    // Warm restart: empty catalog in, recovered catalog + rehydrated cache
    // out. Replay the same trace; the first queries should hit immediately.
    let t0 = Instant::now();
    let warm_db = Database::builder(Catalog::new())
        .data_dir(&dir)
        .fsync(fsync)
        .build();
    let recover_ms = ms(t0.elapsed());
    let rehydrated = warm_db.cache_stats().entries;
    let (warm_ms, warm_q) = time_to_first_hit(&warm_db, &trace);
    drop(warm_db);
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "\n{:<22} {:>14} {:>16}",
        "", "cold (fresh)", "warm (restart)"
    );
    println!(
        "{:<22} {:>14.1} {:>16.1}",
        "first reuse hit (ms)", cold_ms, warm_ms
    );
    println!("{:<22} {:>14} {:>16}", "hit at query #", cold_q, warm_q);
    println!(
        "\nrecovery: {recover_ms:.1} ms, {rehydrated} entries rehydrated, \
         {disk_mb:.2} MB on disk"
    );

    let json = format!(
        "{{\n  \"bench\": \"restart\",\n  \"smoke\": {smoke},\n  \
         \"trace_queries\": {trace_len},\n  \"workload\": \"fig7-medium-reuse\",\n  \
         \"fsync\": \"{}\",\n  \"cold_first_hit_ms\": {cold_ms:.3},\n  \
         \"cold_hit_query\": {cold_q},\n  \"warm_first_hit_ms\": {warm_ms:.3},\n  \
         \"warm_hit_query\": {warm_q},\n  \"recover_ms\": {recover_ms:.3},\n  \
         \"persisted_entries\": {persisted},\n  \"rehydrated_entries\": {rehydrated},\n  \
         \"disk_mb\": {disk_mb:.3}\n}}\n",
        fsync.name()
    );
    let mut f = std::fs::File::create("BENCH_restart.json").expect("write results");
    f.write_all(json.as_bytes()).unwrap();
    println!("\nwrote BENCH_restart.json");
    println!(
        "Expected shape: the warm engine reuses a rehydrated table within its first \
         queries, so its time-to-first-reuse-hit is a fraction of the cold engine's, \
         which must execute (and pay for) the builder query first."
    );

    assert!(
        warm_q != 0,
        "warm restart must produce a reuse hit from rehydrated entries"
    );
    assert!(
        cold_q == 0 || warm_ms < cold_ms,
        "warm first hit ({warm_ms:.1} ms) should beat cold ({cold_ms:.1} ms)"
    );
}
