//! Figure 3 (a/b/c): per-tuple insert / probe / update cost as a function of
//! hash-table size and tuple width, measured on the extendible hash table.
//!
//! ```text
//! cargo run -p hashstash-bench --bin exp_fig3 --release
//! ```

use hashstash_hashtable::Calibrator;

fn main() {
    let mut cal = Calibrator::default();
    // Extend the sweep if requested (the paper goes to 1GB).
    if std::env::var("HASHSTASH_FIG3_LARGE").is_ok() {
        cal.sizes.push(256 << 20);
    }
    println!("Figure 3: hash-table micro-benchmark calibration");
    println!(
        "sizes: {:?}",
        cal.sizes.iter().map(|s| human(*s)).collect::<Vec<_>>()
    );
    let grid = cal.run();

    for (title, pick) in [
        ("Figure 3a: cost of a single INSERT (ns)", 0usize),
        ("Figure 3b: cost of a single PROBE (ns)", 1),
        ("Figure 3c: cost of a single UPDATE (ns)", 2),
    ] {
        println!("\n{title}");
        print!("{:>8}", "width");
        for s in grid.sizes() {
            print!("{:>10}", human(*s));
        }
        println!();
        for (wi, w) in grid.widths().iter().enumerate() {
            print!("{:>7}B", w);
            for (si, _) in grid.sizes().iter().enumerate() {
                let p = &grid.points()[wi][si];
                let v = match pick {
                    0 => p.insert_ns,
                    1 => p.lookup_ns,
                    _ => p.update_ns,
                };
                print!("{v:>10.1}");
            }
            println!();
        }
    }
    println!(
        "\nExpected shape (paper): cost steps up at each cache boundary; insert cost \
         grows beyond 64B tuples, probe cost only beyond 128B (adjacent-line prefetch)."
    );
}

fn human(bytes: usize) -> String {
    if bytes >= 1 << 30 {
        format!("{}GB", bytes >> 30)
    } else if bytes >= 1 << 20 {
        format!("{}MB", bytes >> 20)
    } else {
        format!("{}KB", bytes >> 10)
    }
}
