//! Exp 7: multi-session throughput scaling on the sharded, `Arc`-backed
//! reuse cache.
//!
//! PR 1's facade serialized every query on one reuse-cache mutex held from
//! optimization through execution. This experiment drives T ∈ {1, 2, 4, 8}
//! concurrent sessions of *exact-match reuse* queries against one warmed
//! `Database` and reports queries/second per thread count — the lock-free
//! read path should scale with threads, which the old design could not.
//!
//! Output: a human-readable table plus `BENCH_concurrency.json` (consumed
//! by CI as an artifact). Smoke mode (`HASHSTASH_SMOKE=1`) shrinks the
//! scale factor and iteration count so the run finishes in seconds.

use std::io::Write as _;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use hashstash::Database;
use hashstash_bench::common::{header, ms, seed};
use hashstash_plan::{AggExpr, AggFunc, Interval, QueryBuilder, QuerySpec};
use hashstash_storage::tpch::{generate, TpchConfig};
use hashstash_types::Value;

fn smoke() -> bool {
    std::env::var("HASHSTASH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// The query grid: a handful of join+aggregate shapes with fixed
/// predicates, so after the warm-up every execution is exact-match reuse —
/// the read-only path whose concurrency this experiment measures.
fn grid() -> Vec<QuerySpec> {
    (0..4u32)
        .map(|i| {
            QueryBuilder::new(i)
                .join(
                    "customer",
                    "customer.c_custkey",
                    "orders",
                    "orders.o_custkey",
                )
                .filter(
                    "customer.c_age",
                    Interval::closed(Value::Int(20 + i as i64 * 5), Value::Int(60 + i as i64 * 5)),
                )
                .group_by("customer.c_age")
                .agg(AggExpr::new(AggFunc::Count, "orders.o_orderkey"))
                .build()
                .unwrap()
        })
        .collect()
}

fn main() {
    let smoke = smoke();
    let sf = if smoke { 0.01 } else { 0.05 };
    let iters = if smoke { 24 } else { 120 };
    let thread_counts = [1usize, 2, 4, 8];

    header("Exp 7: multi-session throughput (sharded HtManager)");
    println!("scale factor {sf}, {iters} queries/thread, smoke={smoke}");

    let db = Database::builder(generate(TpchConfig::new(sf, seed()))).build();
    let queries = Arc::new(grid());

    // Warm-up: publish every shape's tables once.
    let mut warm = db.session();
    for q in queries.iter() {
        warm.execute(q).unwrap();
    }
    assert!(
        db.cache_stats().publishes > 0,
        "warm-up must populate the cache"
    );

    let mut rows = Vec::new();
    for &threads in &thread_counts {
        let t0 = Instant::now();
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let db = Arc::clone(&db);
                let queries = Arc::clone(&queries);
                // tidy:allow(no-raw-spawn): bench client threads model external
                // concurrent sessions, not engine-internal parallelism
                #[allow(clippy::disallowed_methods)]
                thread::spawn(move || {
                    let mut session = db.session();
                    let mut reused = 0usize;
                    for k in 0..iters {
                        let q = &queries[(k + t) % queries.len()];
                        let r = session.execute(q).unwrap();
                        if r.decisions.iter().any(|(_, c)| c.is_some()) {
                            reused += 1;
                        }
                    }
                    reused
                })
            })
            .collect();
        let mut reused_total = 0usize;
        for h in handles {
            reused_total += h.join().expect("worker panicked");
        }
        let wall = t0.elapsed();
        let total_queries = threads * iters;
        let qps = total_queries as f64 / wall.as_secs_f64();
        println!(
            "{threads:>2} threads: {total_queries:>5} queries in {:>9.2} ms  →  {qps:>9.1} q/s  ({reused_total} reused)",
            ms(wall)
        );
        rows.push((threads, ms(wall), qps, reused_total));
    }

    let single_qps = rows[0].2;
    let results: Vec<String> = rows
        .iter()
        .map(|(threads, wall_ms, qps, reused)| {
            format!(
                "    {{\"threads\": {threads}, \"wall_ms\": {wall_ms:.3}, \"qps\": {qps:.1}, \"reused_queries\": {reused}, \"speedup\": {:.3}}}",
                qps / single_qps
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"concurrency\",\n  \"smoke\": {smoke},\n  \"scale_factor\": {sf},\n  \"queries_per_thread\": {iters},\n  \"shards\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        db.cache().num_shards(),
        results.join(",\n")
    );
    let mut f = std::fs::File::create("BENCH_concurrency.json").expect("write results");
    f.write_all(json.as_bytes()).unwrap();
    println!("\nwrote BENCH_concurrency.json");

    for (threads, _, qps, _) in &rows {
        if *threads >= 4 && *qps <= single_qps {
            println!(
                "WARNING: {threads}-thread throughput ({qps:.1} q/s) did not exceed single-session ({single_qps:.1} q/s)"
            );
        }
    }
}
