//! Experiment 2a (Figure 8a + Table 8b): reuse on the query level for the
//! fixed seven-interaction session over the 5-way join.
//!
//! ```text
//! cargo run -p hashstash-bench --bin exp2_query_level --release
//! ```

use hashstash::{decision_string, Database, EngineStrategy};
use hashstash_bench::common::{catalog, header, ms};
use hashstash_workload::session::exp2_session;

fn main() {
    header("Experiment 2a: reuse on the query level (paper Figure 8a / Table 8b)");
    let session = exp2_session();
    let strategies = [
        ("AlwaysShare", EngineStrategy::AlwaysShare),
        ("NeverShare", EngineStrategy::NeverShare),
        ("CostModel", EngineStrategy::HashStash),
    ];

    // Per-strategy, per-step runtimes.
    let mut rows: Vec<Vec<f64>> = vec![Vec::new(); strategies.len()];
    let mut decisions: Vec<String> = Vec::new();
    for (si, (_, strategy)) in strategies.iter().enumerate() {
        let db = Database::builder(catalog()).strategy(*strategy).build();
        let mut sess = db.session();
        for (qi, step) in session.iter().enumerate() {
            let r = sess
                .execute(&step.query)
                .unwrap_or_else(|e| panic!("{} failed: {e}", step.name));
            rows[si].push(ms(r.wall_time));
            if *strategy == EngineStrategy::HashStash && qi > 0 {
                // Decision string in paper order: O, P, C, S, Agg.
                let s = decision_string(&r, &["orders.", "part.", "customer.", "supplier.", "agg"]);
                decisions.push(format!("{:<10} {}", step.name, s));
            }
        }
    }

    println!(
        "\n{:<11} {:>13} {:>13} {:>13}",
        "step", "AlwaysShare", "NeverShare", "CostModel"
    );
    for (qi, step) in session.iter().enumerate().skip(1) {
        println!(
            "{:<11} {:>11.1}ms {:>11.1}ms {:>11.1}ms",
            step.name, rows[0][qi], rows[1][qi], rows[2][qi]
        );
    }

    println!("\nTable 8b — CostModel decisions (O,P,C,S,Agg; N=new, S=reused, X=eliminated):");
    for d in &decisions {
        println!("  {d}");
    }
    println!(
        "\nExpected shape (paper): CostModel ≤ min(AlwaysShare, NeverShare) per step; \
         RollUp collapses to the cached aggregation table (XXXXS) and is orders of \
         magnitude faster than NeverShare."
    );
}
