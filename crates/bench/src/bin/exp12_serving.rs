//! Exp 12: the serving front end under multi-tenant budget pressure.
//!
//! A real [`Server`] on a loopback socket serves two authenticated tenants
//! from one shared [`Database`]:
//!
//! - **hot** — a small, repetitive dashboard-style query set, protected by
//!   a per-tenant budget floor sized to its working set;
//! - **churn** — an analyst marching month-window join-aggregates across
//!   the whole `o_orderdate` range, publishing far more than the GC budget
//!   holds.
//!
//! The budget and floor are *sized at runtime* from an unbounded sizing
//! pass (TPC-H generation is deterministic per `(sf, seed)`), so the run
//! is tight for every scale factor: the budget fits the hot set plus a few
//! churn windows, and sustained pressure must land on the churning tenant.
//!
//! Hard assertions (smoke mode included):
//! - the floored tenant loses **zero** entries while the churning tenant
//!   pays with real evictions;
//! - per-tenant counters sum exactly to the global cache counters;
//! - the cache ends within budget.
//!
//! Output: a human-readable table plus `BENCH_serving.json` (uploaded by
//! CI as an artifact) with end-to-end throughput, per-tenant p50/p99
//! request latency and per-tenant hit ratios.

use std::io::{BufReader, BufWriter, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hashstash::{Database, TenantId};
use hashstash_bench::common::{header, ms};
use hashstash_server::protocol::{read_text, write_frame};
use hashstash_server::{CatalogSchema, Server, ServerConfig, TenantSpec};
use hashstash_sql::parse_query;
use hashstash_storage::tpch::{generate, TpchConfig};

fn smoke() -> bool {
    std::env::var("HASHSTASH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// The hot tenant's dashboard set: repeats are exact cache hits.
const HOT_QUERIES: [&str; 3] = [
    "SELECT c_age, COUNT(c_custkey) FROM customer GROUP BY c_age",
    "SELECT c_age, AVG(c_acctbal) FROM customer WHERE c_age >= 30 GROUP BY c_age",
    "SELECT c_custkey, c_age FROM customer WHERE c_age <= 45",
];

/// Month window `i` of the churn tenant's march across the TPC-H date
/// range (1992-01 .. 1998-08): disjoint windows, so every window builds
/// and publishes fresh join tables.
fn churn_query(i: usize) -> String {
    let year = 1992 + i / 12;
    let month = 1 + i % 12;
    format!(
        "SELECT c_age, SUM(l_quantity) FROM customer \
         JOIN orders ON customer.c_custkey = orders.o_custkey \
         JOIN lineitem ON orders.o_orderkey = lineitem.l_orderkey \
         WHERE o_orderdate BETWEEN '{year}-{month:02}-01' AND '{year}-{month:02}-25' \
         GROUP BY c_age"
    )
}

/// A blocking wire client (same protocol the integration tests speak).
struct Client {
    r: BufReader<TcpStream>,
    w: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to loopback server");
        Client {
            r: BufReader::new(stream.try_clone().expect("clone stream")),
            w: BufWriter::new(stream),
        }
    }

    fn send(&mut self, line: &str) -> String {
        write_frame(&mut self.w, line.as_bytes()).expect("send frame");
        read_text(&mut self.r)
            .expect("recv frame")
            .expect("server closed")
    }
}

/// Unbounded sizing pass: measure the hot tenant's steady-state footprint
/// and the average bytes one churn window publishes.
fn size_workload(sf: f64, seed: u64) -> (usize, usize) {
    let db = Database::builder(generate(TpchConfig::new(sf, seed))).build();
    let hot = db.register_tenant("hot");
    let churn = db.register_tenant("churn");
    let run = |tenant: TenantId, sql: &str| {
        let q = parse_query(sql, 0, &CatalogSchema(db.catalog()))
            .unwrap_or_else(|e| panic!("{sql}: {}", e.render(sql)));
        db.session_as(tenant).execute(&q).expect("sizing query");
    };
    // Twice: the second pass is all reuse, so the footprint is steady.
    for _ in 0..2 {
        for sql in HOT_QUERIES {
            run(hot, sql);
        }
    }
    let hot_bytes = db.tenant_cache_stats(hot).bytes;
    const WINDOWS: usize = 4;
    for i in 0..WINDOWS {
        run(churn, &churn_query(i));
    }
    let window_avg = db.tenant_cache_stats(churn).bytes / WINDOWS;
    assert!(
        hot_bytes > 0 && window_avg > 0,
        "sizing pass published nothing"
    );
    (hot_bytes, window_avg)
}

fn percentile(sorted: &[Duration], p: usize) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    sorted[(sorted.len() * p / 100).min(sorted.len() - 1)]
}

/// One client thread's work: HELLO, run `queries`, QUIT; returns the
/// per-request wall latencies.
fn drive(
    addr: std::net::SocketAddr,
    name: &str,
    token: &str,
    queries: Vec<String>,
) -> Vec<Duration> {
    let mut c = Client::connect(addr);
    let hello = c.send(&format!("HELLO {name} {token}"));
    assert_eq!(hello, format!("OK tenant={name}"), "handshake failed");
    let mut lat = Vec::with_capacity(queries.len());
    for sql in &queries {
        let t0 = Instant::now();
        let reply = c.send(&format!("QUERY {sql}"));
        lat.push(t0.elapsed());
        assert!(reply.starts_with("OK rows="), "query failed: {reply}");
    }
    assert_eq!(c.send("QUIT"), "OK bye");
    lat
}

fn main() {
    let smoke = smoke();
    let sf = if smoke { 0.002 } else { 0.01 };
    let seed = 42;
    let hot_iters = if smoke { 10 } else { 50 };
    let churn_windows = if smoke { 24 } else { 72 };
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);

    header("Exp 12: serving front end (two tenants, shared budget, floors)");
    println!("TPC-H sf {sf}, seed {seed}, {cores} cores, smoke={smoke}");

    let (hot_bytes, window_avg) = size_workload(sf, seed);
    // Tight: the hot set with slack plus ~3 churn windows; the churn march
    // publishes `churn_windows` of them, so most get evicted again.
    let budget = hot_bytes * 2 + window_avg * 3;
    let floor = hot_bytes * 2;
    println!(
        "sized: hot set {} KiB, churn window ~{} KiB -> budget {} KiB, hot floor {} KiB",
        hot_bytes / 1024,
        window_avg / 1024,
        budget / 1024,
        floor / 1024
    );

    let db = Database::builder(generate(TpchConfig::new(sf, seed)))
        .gc_budget(budget)
        .parallelism(2)
        .build();
    let server = Server::start(
        Arc::clone(&db),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            tenants: vec![
                TenantSpec {
                    name: "hot".into(),
                    token: "hot-secret".into(),
                    floor_bytes: floor,
                },
                TenantSpec {
                    name: "churn".into(),
                    token: "churn-secret".into(),
                    floor_bytes: 0,
                },
            ],
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // Two clients per tenant; churn thread t marches the even/odd windows.
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for t in 0..2usize {
        let hot_q: Vec<String> = (0..hot_iters)
            .flat_map(|_| HOT_QUERIES.iter().map(|q| q.to_string()))
            .collect();
        // tidy:allow(no-raw-spawn): bench client threads model external
        // network clients; execution inside still uses the shared pool.
        #[allow(clippy::disallowed_methods)]
        let h = std::thread::spawn(move || drive(addr, "hot", "hot-secret", hot_q));
        handles.push(("hot", h));
        let churn_q: Vec<String> = (t..churn_windows).step_by(2).map(churn_query).collect();
        // tidy:allow(no-raw-spawn): see above — I/O-bound wire clients.
        #[allow(clippy::disallowed_methods)]
        let h = std::thread::spawn(move || drive(addr, "churn", "churn-secret", churn_q));
        handles.push(("churn", h));
    }
    let mut lat_hot = Vec::new();
    let mut lat_churn = Vec::new();
    for (tenant, h) in handles {
        let lat = h.join().expect("client thread");
        if tenant == "hot" {
            lat_hot.extend(lat);
        } else {
            lat_churn.extend(lat);
        }
    }
    let wall = t0.elapsed();
    let requests = lat_hot.len() + lat_churn.len();
    let throughput = requests as f64 / wall.as_secs_f64();

    // A final wire STATS round-trip (the verb is part of the contract).
    let mut c = Client::connect(addr);
    assert_eq!(c.send("HELLO hot hot-secret"), "OK tenant=hot");
    let stats_reply = c.send("STATS");
    assert!(stats_reply.starts_with("OK"), "STATS failed: {stats_reply}");
    assert_eq!(c.send("QUIT"), "OK bye");

    // ---- hard assertions: floors held, pressure landed on the churner,
    // per-tenant accounting partitions the global counters. ----
    let hot_id = db.tenant_id("hot").expect("hot registered");
    let churn_id = db.tenant_id("churn").expect("churn registered");
    let hs = db.tenant_cache_stats(hot_id);
    let cs = db.tenant_cache_stats(churn_id);
    let global = db.cache_stats();
    assert_eq!(
        hs.evictions, 0,
        "floored tenant lost entries: {hs:?} (floor {floor})"
    );
    assert!(
        cs.evictions > 0,
        "budget never pressured the churning tenant: {cs:?} (budget {budget})"
    );
    assert!(
        global.bytes <= budget,
        "cache ended over budget: {} > {budget}",
        global.bytes
    );
    assert_eq!(
        hs.publishes + cs.publishes,
        global.publishes,
        "tenant publishes do not partition the global count"
    );
    assert_eq!(hs.evictions + cs.evictions, global.evictions);
    assert_eq!(hs.entries + cs.entries, global.entries);
    assert_eq!(hs.bytes + cs.bytes, global.bytes);

    lat_hot.sort_unstable();
    lat_churn.sort_unstable();
    let rows = [("hot", &lat_hot, hs), ("churn", &lat_churn, cs)];
    let mut json_rows = Vec::new();
    for (name, lat, st) in rows {
        let (p50, p99) = (percentile(lat, 50), percentile(lat, 99));
        println!(
            "{name:>6}: {:>4} requests, p50 {:>8.2} ms, p99 {:>8.2} ms, \
             hit ratio {:.2}, evictions {}, {} KiB resident",
            lat.len(),
            ms(p50),
            ms(p99),
            st.hit_ratio(),
            st.evictions,
            st.bytes / 1024
        );
        json_rows.push(format!(
            "    {{\"tenant\": \"{name}\", \"requests\": {}, \"p50_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"hit_ratio\": {:.4}, \"publishes\": {}, \"reuses\": {}, \
             \"evictions\": {}, \"bytes\": {}, \"floor_bytes\": {}}}",
            lat.len(),
            ms(p50),
            ms(p99),
            st.hit_ratio(),
            st.publishes,
            st.reuses,
            st.evictions,
            st.bytes,
            if name == "hot" { floor } else { 0 }
        ));
    }
    println!(
        "total: {requests} requests in {:.2} s -> {throughput:.1} req/s",
        wall.as_secs_f64()
    );

    let json = format!(
        "{{\n  \"bench\": \"serving\",\n  \"smoke\": {smoke},\n  \"sf\": {sf},\n  \
         \"available_cores\": {cores},\n  \"budget_bytes\": {budget},\n  \
         \"requests\": {requests},\n  \"wall_s\": {:.3},\n  \
         \"throughput_rps\": {throughput:.2},\n  \"tenants\": [\n{}\n  ]\n}}\n",
        wall.as_secs_f64(),
        json_rows.join(",\n")
    );
    let mut f = std::fs::File::create("BENCH_serving.json").expect("write results");
    f.write_all(json.as_bytes()).unwrap();
    println!("wrote BENCH_serving.json");
}
