//! Experiment 2b/2c (Figure 9a + 9b): reuse on the operator level.
//!
//! Sweeps the contribution-ratio of a synthetic cached hash table from 100%
//! down to 0% while keeping its size constant (the remainder is overhead
//! tuples that must be post-filtered), and compares Always-Share,
//! Never-Share and the cost-model strategy on a single reuse-aware hash
//! join (9a) and hash aggregate (9b).
//!
//! ```text
//! cargo run -p hashstash-bench --bin exp2_operator_level --release
//! ```

use std::sync::Arc;
use std::time::Instant;

use hashstash::{Database, EngineStrategy};
use hashstash_bench::common::{header, ms};
use hashstash_cache::{AggPayload, StoredHt, TaggedRow};
use hashstash_hashtable::ExtendibleHashTable;
use hashstash_plan::{
    AggExpr, AggFunc, HtFingerprint, HtKind, Interval, PredBox, QueryBuilder, QuerySpec, Region,
};
use hashstash_storage::{Catalog, TableBuilder};
use hashstash_types::{DataType, Field, Row, Schema, Value};

/// Required build-side rows (the paper uses a 16MB build side; scale with
/// `HASHSTASH_FIG9_N`).
fn h() -> i64 {
    std::env::var("HASHSTASH_FIG9_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40_000)
}

fn synth_catalog() -> Catalog {
    let h = h();
    let mut cat = Catalog::new();
    let mut b = TableBuilder::new(
        "buildt",
        vec![
            ("bt_key", DataType::Int),
            ("bt_sel", DataType::Int),
            ("bt_pos", DataType::Int),
        ],
    );
    for i in 0..h {
        b.push_row(vec![Value::Int(i), Value::Int(1), Value::Int(i)]);
    }
    for i in 0..h {
        b.push_row(vec![Value::Int(h + i), Value::Int(0), Value::Int(i)]);
    }
    cat.register(b.finish_with_indexes(&["bt_pos", "bt_sel"]).unwrap());

    let mut p = TableBuilder::new("probet", vec![("pt_key", DataType::Int)]);
    let mut state = 0x1234_5678_9abc_def0u64;
    for _ in 0..h * 4 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        p.push_row(vec![Value::Int((state >> 16) as i64 % (2 * h))]);
    }
    cat.register(p.finish());
    cat
}

fn join_query(id: u32) -> QuerySpec {
    let h = h();
    QueryBuilder::new(id)
        .join("probet", "probet.pt_key", "buildt", "buildt.bt_key")
        .filter("buildt.bt_sel", Interval::eq(Value::Int(1)))
        .filter(
            "buildt.bt_pos",
            Interval::closed(Value::Int(0), Value::Int(h - 1)),
        )
        .agg(AggExpr::new(AggFunc::Count, "probet.pt_key"))
        .build()
        .unwrap()
}

/// Publish the synthetic cached join table with contribution ratio `c`.
fn seed_join_cache(db: &Database, c: f64) {
    let h = h();
    let keep = (c * h as f64).round() as i64;
    let junk = h - keep;
    let payload = ["buildt.bt_key", "buildt.bt_pos", "buildt.bt_sel"];
    let schema = Schema::new(
        payload
            .iter()
            .map(|n| Field::new(*n, DataType::Int))
            .collect(),
    );
    let mut ht = ExtendibleHashTable::with_capacity(20, h as usize);
    for i in 0..keep {
        ht.insert(
            i as u64,
            TaggedRow::untagged(Row::new(vec![Value::Int(i), Value::Int(i), Value::Int(1)])),
        );
    }
    for i in 0..junk {
        ht.insert(
            (h + i) as u64,
            TaggedRow::untagged(Row::new(vec![
                Value::Int(h + i),
                Value::Int(i),
                Value::Int(0),
            ])),
        );
    }
    let mut region = Region::empty();
    if keep > 0 {
        region = region.union(&Region::from_box(
            PredBox::all()
                .with("buildt.bt_sel", Interval::eq(Value::Int(1)))
                .with(
                    "buildt.bt_pos",
                    Interval::closed(Value::Int(0), Value::Int(keep - 1)),
                ),
        ));
    }
    if junk > 0 {
        region = region.union(&Region::from_box(
            PredBox::all()
                .with("buildt.bt_sel", Interval::eq(Value::Int(0)))
                .with(
                    "buildt.bt_pos",
                    Interval::closed(Value::Int(0), Value::Int(junk - 1)),
                ),
        ));
    }
    let fp = HtFingerprint {
        kind: HtKind::JoinBuild,
        tables: std::iter::once(Arc::from("buildt")).collect(),
        edges: vec![],
        region,
        key_attrs: vec![Arc::from("buildt.bt_key")],
        payload_attrs: payload.iter().map(|p| Arc::from(*p)).collect(),
        aggregates: vec![],
        tagged: false,
    };
    db.with_cache(|htm| htm.publish(fp, schema, StoredHt::Join(ht)));
}

fn agg_query(id: u32) -> QuerySpec {
    let h = h();
    QueryBuilder::new(id)
        .table("buildt")
        .filter(
            "buildt.bt_pos",
            Interval::closed(Value::Int(0), Value::Int(h - 1)),
        )
        .group_by("buildt.bt_sel")
        .group_by("buildt.bt_key")
        .agg(AggExpr::new(AggFunc::Sum, "buildt.bt_pos"))
        .build()
        .unwrap()
}

/// Publish a partially filled aggregate table covering `bt_pos < c·H`.
fn seed_agg_cache(db: &Database, c: f64) {
    let h = h();
    let keep = (c * h as f64).round() as i64;
    if keep == 0 {
        return;
    }
    let aggs = vec![AggExpr::new(AggFunc::Sum, "buildt.bt_pos")];
    let schema = Schema::new(vec![
        Field::new("buildt.bt_sel", DataType::Int),
        Field::new("buildt.bt_key", DataType::Int),
    ]);
    let mut ht = ExtendibleHashTable::with_capacity(24, (keep * 2) as usize);
    // Matches the generator: rows (i, sel=1, pos=i) and (h+i, sel=0, pos=i).
    for sel in [1i64, 0] {
        for i in 0..keep {
            let key_attr = if sel == 1 { i } else { h + i };
            let group = Row::new(vec![Value::Int(sel), Value::Int(key_attr)]);
            let mut p = AggPayload::new(group.clone(), &aggs);
            p.accums[0].update(&Value::Int(i));
            let key = group.key64(&[0, 1]);
            ht.insert(key, p);
        }
    }
    let fp = HtFingerprint {
        kind: HtKind::Aggregate,
        tables: std::iter::once(Arc::from("buildt")).collect(),
        edges: vec![],
        region: Region::from_box(PredBox::all().with(
            "buildt.bt_pos",
            Interval::closed(Value::Int(0), Value::Int(keep - 1)),
        )),
        key_attrs: vec![Arc::from("buildt.bt_sel"), Arc::from("buildt.bt_key")],
        payload_attrs: vec![Arc::from("buildt.bt_sel"), Arc::from("buildt.bt_key")],
        aggregates: aggs,
        tagged: false,
    };
    db.with_cache(|htm| htm.publish(fp, schema, StoredHt::Agg(ht)));
}

fn run_once(
    strategy: EngineStrategy,
    c: f64,
    seed: impl Fn(&Database, f64),
    query: QuerySpec,
) -> f64 {
    let db = Database::builder(synth_catalog())
        .strategy(strategy)
        .build();
    seed(&db, c);
    let mut session = db.session();
    let t0 = Instant::now();
    session.execute(&query).expect("query runs");
    ms(t0.elapsed())
}

fn sweep(title: &str, seed: impl Fn(&Database, f64) + Copy, query: impl Fn(u32) -> QuerySpec) {
    println!("\n{title}");
    println!(
        "{:>6} {:>14} {:>14} {:>14}",
        "contr%", "AlwaysShare", "NeverShare", "CostModel"
    );
    for contr in (0..=10).rev().map(|x| x as f64 / 10.0) {
        let t_always = run_once(EngineStrategy::AlwaysShare, contr, seed, query(1));
        let t_never = run_once(EngineStrategy::NeverShare, contr, seed, query(2));
        let t_cost = run_once(EngineStrategy::HashStash, contr, seed, query(3));
        println!(
            "{:>6.0} {:>12.1}ms {:>12.1}ms {:>12.1}ms",
            contr * 100.0,
            t_always,
            t_never,
            t_cost
        );
    }
}

fn main() {
    header("Experiment 2b/2c: reuse on the operator level (paper Figure 9a/9b)");
    println!(
        "build side: {} required rows (+ constant-size overhead)",
        h()
    );
    sweep(
        "Figure 9a: reuse-aware hash JOIN vs contribution-ratio",
        seed_join_cache,
        join_query,
    );
    sweep(
        "Figure 9b: reuse-aware hash AGGREGATE vs contribution-ratio",
        seed_agg_cache,
        agg_query,
    );
    println!(
        "\nExpected shape (paper): Never-Share is flat; Always-Share grows as the \
         contribution falls and crosses Never-Share (~70% in the paper); the cost \
         model tracks the lower envelope of the two."
    );
}
