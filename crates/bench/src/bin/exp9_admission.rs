//! Exp 9: benefit-scored admission under the unified reuse budget.
//!
//! The Fig. 7-style workload (medium-reuse interaction trace) runs under
//! three shared-budget levels, comparing the always-admit policy
//! (`CostBasedReuse`, the paper's default) against benefit-scored admission
//! (`BenefitScoredAdmission`): a freshly built table is published only when
//! the cost model's predicted cycles-saved-per-byte of a future reuse
//! clears a threshold. Under a tight budget, refusing low-density tables
//! leaves more room for the tables that actually pay rent — the admission
//! counterpart of the GC's benefit/size eviction weight.
//!
//! Output: a human-readable table plus `BENCH_admission.json` (uploaded by
//! CI as an artifact). Smoke mode (`HASHSTASH_SMOKE=1`) shrinks the trace
//! so the run finishes in seconds.

use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

use hashstash::Database;
use hashstash_bench::common::{catalog, header, mb, ms, seed};
use hashstash_opt::policy::{BenefitScoredAdmission, CostBasedReuse, ReusePolicy};
use hashstash_workload::trace::{generate_trace, ReusePotential, TraceConfig};

fn smoke() -> bool {
    std::env::var("HASHSTASH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

struct RunResult {
    wall_ms: f64,
    publishes: u64,
    reuses: u64,
    hit_ratio: f64,
    evictions: u64,
    peak_mb: f64,
}

fn run(policy: Arc<dyn ReusePolicy>, budget: Option<usize>, trace_len: usize) -> RunResult {
    let trace = generate_trace(TraceConfig {
        queries: trace_len,
        ..TraceConfig::paper(ReusePotential::Medium, seed())
    });
    let db = Database::builder(catalog())
        .policy_handle(policy)
        .gc_budget(budget)
        .build();
    let mut session = db.session();
    let t0 = Instant::now();
    for tq in &trace {
        session
            .execute(&tq.query)
            .unwrap_or_else(|e| panic!("query {} failed: {e}", tq.query.id));
    }
    let wall = t0.elapsed();
    let cs = db.cache_stats();
    RunResult {
        wall_ms: ms(wall),
        publishes: cs.publishes,
        reuses: cs.reuses,
        hit_ratio: cs.hit_ratio(),
        evictions: cs.evictions,
        peak_mb: mb(cs.peak_bytes),
    }
}

fn main() {
    let smoke = smoke();
    let trace_len = if smoke { 24 } else { 64 };

    header("Exp 9: benefit-scored admission vs always-admit (Fig. 7 workload)");

    // Reference run without a budget: its peak footprint calibrates the
    // three pressure levels.
    let unbounded = run(Arc::new(CostBasedReuse), None, trace_len);
    let peak_bytes = (unbounded.peak_mb * 1024.0 * 1024.0).max(1.0);
    println!(
        "unbounded reference: {:.1} ms, peak {:.2} MB, hit ratio {:.2}",
        unbounded.wall_ms, unbounded.peak_mb, unbounded.hit_ratio
    );
    println!(
        "\n{:<10} {:<16} {:>10} {:>10} {:>8} {:>10} {:>10} {:>9}",
        "budget",
        "admission",
        "time (ms)",
        "publishes",
        "reuses",
        "hit ratio",
        "evictions",
        "peak MB"
    );

    let policies: [(&str, Arc<dyn ReusePolicy>); 2] = [
        ("always-admit", Arc::new(CostBasedReuse)),
        (
            "benefit-scored",
            Arc::new(BenefitScoredAdmission::default()),
        ),
    ];
    let budget_levels = [0.1, 0.25, 0.5];

    let mut results: Vec<String> = Vec::new();
    for &frac in &budget_levels {
        let budget = (peak_bytes * frac) as usize;
        for (name, policy) in &policies {
            let r = run(Arc::clone(policy), Some(budget), trace_len);
            println!(
                "{:<10} {:<16} {:>10.1} {:>10} {:>8} {:>10.2} {:>10} {:>9.2}",
                format!("{:.0}%", frac * 100.0),
                name,
                r.wall_ms,
                r.publishes,
                r.reuses,
                r.hit_ratio,
                r.evictions,
                r.peak_mb
            );
            results.push(format!(
                "    {{\"budget_fraction\": {frac}, \"admission\": \"{name}\", \
                 \"wall_ms\": {:.3}, \"publishes\": {}, \"reuses\": {}, \
                 \"hit_ratio\": {:.4}, \"evictions\": {}, \"peak_mb\": {:.3}}}",
                r.wall_ms, r.publishes, r.reuses, r.hit_ratio, r.evictions, r.peak_mb
            ));
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"admission\",\n  \"smoke\": {smoke},\n  \"trace_queries\": {trace_len},\n  \
         \"workload\": \"fig7-medium-reuse\",\n  \"unbounded_peak_mb\": {:.3},\n  \
         \"threshold_ns_per_byte\": {},\n  \"budget_levels\": [0.1, 0.25, 0.5],\n  \"results\": [\n{}\n  ]\n}}\n",
        unbounded.peak_mb,
        BenefitScoredAdmission::DEFAULT_MIN_BENEFIT_PER_BYTE,
        results.join(",\n")
    );
    let mut f = std::fs::File::create("BENCH_admission.json").expect("write results");
    f.write_all(json.as_bytes()).unwrap();
    println!("\nwrote BENCH_admission.json");
    println!(
        "Expected shape: benefit-scored admission publishes fewer (low-density) tables, \
         so the tight budget sees fewer evictions and a hit ratio at or above always-admit. \
         With a generous budget the trade-off flips — even low-density tables would have \
         found a reuse, so refusing them costs a few hits while saving publish+evict work."
    );
}
