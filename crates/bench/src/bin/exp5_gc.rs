//! Experiment 5: effects of garbage collection.
//!
//! Runs each workload trace once without GC (recording the peak cache
//! footprint), then with the GC active at a budget of 20% and 50% of that
//! peak, and reports the runtime overhead and eviction counts. Also shows
//! the cost of the fine-grained (per-entry) bookkeeping mode the paper
//! implemented and rejected.
//!
//! ```text
//! cargo run -p hashstash-bench --bin exp5_gc --release
//! ```

use hashstash::{Database, EngineStrategy};
use hashstash_bench::common::{catalog, header, mb, ms, run_trace, seed};
use hashstash_cache::GcConfig;
use hashstash_workload::trace::{generate_trace, ReusePotential, TraceConfig};

fn main() {
    header("Experiment 5: garbage collection overhead (paper §6.5)");
    println!(
        "{:<8} {:<22} {:>12} {:>12} {:>10} {:>10}",
        "reuse", "mode", "time (ms)", "overhead", "evictions", "peak MB"
    );
    for reuse in [
        ReusePotential::Low,
        ReusePotential::Medium,
        ReusePotential::High,
    ] {
        let trace = generate_trace(TraceConfig::paper(reuse, seed()));
        let (t_wo, db_wo) = run_trace(catalog(), EngineStrategy::HashStash, &trace);
        let peak = db_wo.cache_stats().peak_bytes.max(1);
        println!(
            "{:<8} {:<22} {:>10.1}ms {:>12} {:>10} {:>10.1}",
            format!("{reuse:?}"),
            "wo GC",
            ms(t_wo),
            "-",
            db_wo.cache_stats().evictions,
            mb(peak)
        );
        for (label, frac, fine) in [
            ("with GC (20% budget)", 0.2, false),
            ("with GC (50% budget)", 0.5, false),
            ("fine-grained (50%)", 0.5, true),
        ] {
            let db = Database::builder(catalog())
                .gc(GcConfig {
                    budget_bytes: Some((peak as f64 * frac) as usize),
                    policy: Default::default(),
                    fine_grained: fine,
                    ..GcConfig::default()
                })
                .build();
            let mut session = db.session();
            let t0 = std::time::Instant::now();
            for tq in &trace {
                session.execute(&tq.query).expect("query");
            }
            let t = t0.elapsed();
            let overhead = (ms(t) / ms(t_wo) - 1.0) * 100.0;
            println!(
                "{:<8} {:<22} {:>10.1}ms {:>11.1}% {:>10} {:>10.1}",
                "",
                label,
                ms(t),
                overhead,
                db.cache_stats().evictions,
                mb(db.cache_stats().peak_bytes)
            );
        }
    }
    println!(
        "\nExpected shape (paper §6.5): ~10% overhead at a 20% budget for medium/high \
         reuse, dropping to ~5% at 50%; near-zero overhead for the low-reuse trace; \
         fine-grained bookkeeping costs extra, which is why the paper ships coarse LRU."
    );
}
