//! Experiment 4 (Figure 11): the query-batch interface.
//!
//! Groups the medium-reuse trace into batches of 4, 8 and 16 queries. For
//! each size: the first batch populates the cache, then 10 further batches
//! run in each of the three modes — single-query plans without reuse,
//! single-query plans with reuse, and reuse-aware shared plans — and the
//! average total batch runtime is reported.
//!
//! ```text
//! cargo run -p hashstash-bench --bin exp4_batch --release
//! ```

use std::time::Instant;

use hashstash::{BatchMode, Database};
use hashstash_bench::common::{catalog, header, ms, seed};
use hashstash_workload::trace::{batches, generate_trace, ReusePotential, TraceConfig};

fn main() {
    header("Experiment 4: multi-query reuse (paper Figure 11)");
    let trace = generate_trace(TraceConfig::paper(ReusePotential::Medium, seed()));
    println!(
        "{:>6} {:>22} {:>22} {:>22}",
        "batch", "single (wo reuse)", "single (w reuse)", "shared (w reuse)"
    );
    for size in [4usize, 8, 16] {
        let all = batches(&trace, size);
        let warm = &all[0];
        let rest: Vec<_> = all.iter().skip(1).take(10).collect();
        let mut totals = [0.0f64; 3];
        let modes = [
            BatchMode::SingleNoReuse,
            BatchMode::SingleWithReuse,
            BatchMode::SharedWithReuse,
        ];
        for (mi, mode) in modes.iter().enumerate() {
            let db = Database::open(catalog());
            let mut session = db.session();
            // Populate the cache with one batch first (reuse modes benefit).
            session
                .execute_batch(warm, BatchMode::SingleWithReuse)
                .expect("warm batch");
            let t0 = Instant::now();
            for b in &rest {
                session.execute_batch(b, *mode).expect("batch runs");
            }
            totals[mi] = ms(t0.elapsed()) / rest.len() as f64;
        }
        println!(
            "{:>6} {:>20.1}ms {:>20.1}ms {:>20.1}ms",
            size, totals[0], totals[1], totals[2]
        );
    }
    println!(
        "\nExpected shape (paper Fig 11): single-with-reuse ≈20% below single-without; \
         shared plans lowest (~40% below single-without), gap widening with batch size."
    );
}
