//! Exp 11: selection-vector kernels vs the row-at-a-time interpreter.
//!
//! The three columnar hot paths — base-table scan filtering, hash-join
//! probe key extraction, aggregate key/fold preparation — run here in both
//! regimes (`ExecContext::with_vectorize`) over the same synthetic data at
//! W ∈ {1, 4, 8} workers, interleaved across iterations. The filter columns
//! are deliberately **not** indexed: an indexed predicate takes the index
//! access path in both regimes and would measure nothing.
//!
//! Determinism is a hard error, smoke mode included: every iteration's full
//! output digest (row contents *and* order) from either regime at any
//! worker count is compared against the serial row-oracle reference; any
//! divergence is recorded in the JSON (`"deterministic": false`) and the
//! process exits non-zero.
//!
//! The JSON also records the vectorized execution counters
//! (`batches_processed`, `rows_filtered_vectorized`) per leg, so the
//! artifact proves the columnar path actually engaged rather than silently
//! falling back to rows.
//!
//! Output: a human-readable table plus `BENCH_vectorized.json` (uploaded by
//! CI as an artifact). Smoke mode (`HASHSTASH_SMOKE=1`) shrinks the row
//! count so the run finishes in seconds.

use std::io::Write as _;
use std::time::{Duration, Instant};

use hashstash_bench::common::{header, ms};
use hashstash_cache::{GcConfig, HtManager};
use hashstash_exec::plan::{OutputAgg, PhysicalPlan, ScanSpec};
use hashstash_exec::{execute, ExecContext, ExecMetrics, TempTableCache, WorkerPool};
use hashstash_plan::{AggExpr, AggFunc, Interval, PredBox};
use hashstash_storage::{Catalog, TableBuilder};
use hashstash_types::{DataType, Value};

fn smoke() -> bool {
    std::env::var("HASHSTASH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Deterministic splitmix-style generator (data must be identical across
/// runs so digests are comparable).
fn mix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

const DICT: [&str; 4] = ["alpha", "beta", "delta", "gamma"];

/// `t(k, a, f, s)` with no indexes — `a` is the filter column, `k` joins
/// against `dim(d_key, d_tag)` at ~6% match rate.
fn synth(n: u64) -> Catalog {
    let mut cat = Catalog::new();
    let mut seed = 0xe11_5eedu64;
    let mut t = TableBuilder::with_capacity(
        "t",
        vec![
            ("k", DataType::Int),
            ("a", DataType::Int),
            ("f", DataType::Float),
            ("s", DataType::Str),
        ],
        n as usize,
    );
    for _ in 0..n {
        let r = mix(&mut seed);
        t.push_row(vec![
            Value::Int((r % 65_536) as i64),
            Value::Int(((r >> 16) % 10_000) as i64),
            Value::float(((r >> 30) % 1_000) as f64 * 0.125 - 60.0),
            Value::str(DICT[(r >> 40) as usize % DICT.len()]),
        ]);
    }
    cat.register(t.finish());
    let mut dim = TableBuilder::with_capacity(
        "dim",
        vec![("d_key", DataType::Int), ("d_tag", DataType::Str)],
        4096,
    );
    for i in 0..4096i64 {
        dim.push_row(vec![
            Value::Int(i),
            Value::str(DICT[(i % DICT.len() as i64) as usize]),
        ]);
    }
    cat.register(dim.finish());
    cat
}

fn a_filter(lo: i64, hi: i64) -> PredBox {
    PredBox::all().with("t.a", Interval::closed(Value::Int(lo), Value::Int(hi)))
}

/// The three columnar hot paths, each dominated by the loop the kernel
/// replaces: a highly selective filter (kernel work dominates, output
/// materialization is negligible), a probe over a pre-filtered batch, and
/// an aggregate folding half the table into four dictionary groups.
fn legs() -> Vec<(&'static str, PhysicalPlan)> {
    vec![
        (
            "scan_filter",
            PhysicalPlan::Scan(ScanSpec::filtered("t", a_filter(0, 199))),
        ),
        (
            "join_probe",
            PhysicalPlan::HashJoin {
                probe: Box::new(PhysicalPlan::Scan(ScanSpec::filtered(
                    "t",
                    a_filter(0, 1999),
                ))),
                build: Some(Box::new(PhysicalPlan::Scan(ScanSpec::full("dim")))),
                probe_key: "t.k".into(),
                build_key: "dim.d_key".into(),
                reuse: None,
                publish: None,
            },
        ),
        (
            "agg_fold",
            PhysicalPlan::HashAggregate {
                input: Some(Box::new(PhysicalPlan::Scan(ScanSpec::filtered(
                    "t",
                    a_filter(0, 4999),
                )))),
                group_by: vec!["t.s".into()],
                aggs: vec![
                    AggExpr::new(AggFunc::Sum, "t.f"),
                    AggExpr::new(AggFunc::Count, "t.k"),
                ],
                output_aggs: vec![OutputAgg::Direct(0), OutputAgg::Direct(1)],
                reuse: None,
                publish: None,
                post_group_by: None,
            },
        ),
    ]
}

/// Full-output digest — row contents *and* order — via FNV-1a
/// (`StableHasher`), comparable across runs and processes.
fn digest(rows: &[hashstash_types::Row]) -> (usize, u64) {
    use std::hash::{Hash, Hasher};
    let mut h = hashstash_types::StableHasher::new();
    for r in rows {
        r.hash(&mut h);
    }
    (rows.len(), h.finish())
}

fn median(samples: &[Duration]) -> Duration {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) && mid > 0 {
        (sorted[mid - 1] + sorted[mid]) / 2
    } else {
        sorted[mid]
    }
}

fn main() {
    let smoke = smoke();
    let n: u64 = if smoke { 200_000 } else { 2_000_000 };
    let iters = 6;
    let worker_counts = [1usize, 4, 8];
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);

    header("Exp 11: vectorized columnar hot paths (selection-vector kernels)");
    println!("t rows {n}, dim rows 4096, {iters} iterations/leg, {cores} cores, smoke={smoke}");

    let cat = synth(n);
    let htm = HtManager::new(GcConfig::default());
    let temps = TempTableCache::unbounded();
    let pool = WorkerPool::new(worker_counts.iter().max().unwrap() - 1, false);
    let legs = legs();

    // Semantic equality of the metrics is asserted up front, and the
    // vectorized counters are captured for the JSON: the artifact must
    // prove the columnar path engaged on every leg.
    let mut counters: Vec<(usize, u64, u64)> = Vec::new();
    {
        for (i, (name, plan)) in legs.iter().enumerate() {
            let run = |vectorize: bool| -> ExecMetrics {
                let mut ctx = ExecContext::new(&cat, &htm, &temps)
                    .with_parallelism(1)
                    .with_vectorize(vectorize);
                execute(plan, &mut ctx).expect(name);
                ctx.metrics
            };
            let vec_m = run(true);
            let row_m = run(false);
            assert_eq!(
                vec_m.semantic(),
                row_m.semantic(),
                "{name}: semantic metrics must not depend on the regime"
            );
            assert!(
                vec_m.batches_processed > 0 && vec_m.rows_filtered_vectorized > 0,
                "{name}: the columnar path must engage (got {vec_m:?})"
            );
            assert_eq!(row_m.batches_processed, 0, "{name}: oracle stays row-wise");
            counters.push((i, vec_m.batches_processed, vec_m.rows_filtered_vectorized));
        }
    }

    // wall[leg][workers][regime] — regime 0 = row oracle, 1 = vectorized.
    let mut wall = vec![vec![[Vec::new(), Vec::new()]; worker_counts.len()]; legs.len()];
    let mut reference: Option<Vec<(usize, u64)>> = None;
    let mut divergences: Vec<String> = Vec::new();
    // Worker counts and regimes are interleaved across iterations so slow
    // drift lands on every cell equally; iteration 0 warms untimed (its
    // digests still feed the divergence check, with the serial row oracle
    // of the warm-up pass as the reference).
    for iter in 0..=iters {
        for (w, &workers) in worker_counts.iter().enumerate() {
            for (regime, vectorize) in [(0usize, false), (1usize, true)] {
                let mut digests = Vec::with_capacity(legs.len());
                for (l, (name, plan)) in legs.iter().enumerate() {
                    let t0 = Instant::now();
                    let mut ctx = ExecContext::new(&cat, &htm, &temps)
                        .with_parallelism(workers)
                        .with_vectorize(vectorize)
                        .with_pool(&pool);
                    let (_, rows) = execute(plan, &mut ctx).expect(name);
                    let dt = t0.elapsed();
                    if iter > 0 {
                        wall[l][w][regime].push(dt);
                    }
                    digests.push(digest(&rows));
                }
                match &reference {
                    None => reference = Some(digests),
                    Some(want) if want != &digests => divergences.push(format!(
                        "vectorize={vectorize}, {workers} workers, iteration {iter}: \
                         output diverged from the serial row-oracle reference"
                    )),
                    Some(_) => {}
                }
            }
        }
    }

    let mut json_rows: Vec<String> = Vec::new();
    let mut speedup_scan_serial = 0.0;
    for (l, (name, _)) in legs.iter().enumerate() {
        for (w, &workers) in worker_counts.iter().enumerate() {
            let row_ms = ms(median(&wall[l][w][0]));
            let vec_ms = ms(median(&wall[l][w][1]));
            let speedup = row_ms / vec_ms;
            if l == 0 && workers == 1 {
                speedup_scan_serial = speedup;
            }
            println!(
                "{name:>12} @ {workers} workers: row {row_ms:>9.2} ms, \
                 vectorized {vec_ms:>9.2} ms  ({speedup:>5.2}×)"
            );
            json_rows.push(format!(
                "    {{\"leg\": \"{name}\", \"workers\": {workers}, \"row_ms\": {row_ms:.3}, \
                 \"vectorized_ms\": {vec_ms:.3}, \"speedup\": {speedup:.3}}}"
            ));
        }
    }
    let deterministic = divergences.is_empty();
    let counter_rows: Vec<String> = counters
        .iter()
        .map(|&(l, batches, filtered)| {
            format!(
                "    {{\"leg\": \"{}\", \"batches_processed\": {batches}, \
                 \"rows_filtered_vectorized\": {filtered}}}",
                legs[l].0
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"vectorized\",\n  \"smoke\": {smoke},\n  \"t_rows\": {n},\n  \
         \"iterations\": {iters},\n  \"available_cores\": {cores},\n  \
         \"legs\": [\"scan_filter\", \"join_probe\", \"agg_fold\"],\n  \
         \"deterministic\": {deterministic},\n  \
         \"speedup_scan\": {speedup_scan_serial:.3},\n  \
         \"vectorized_counters\": [\n{}\n  ],\n  \"results\": [\n{}\n  ]\n}}\n",
        counter_rows.join(",\n"),
        json_rows.join(",\n")
    );
    let mut f = std::fs::File::create("BENCH_vectorized.json").expect("write results");
    f.write_all(json.as_bytes()).unwrap();
    println!("\nwrote BENCH_vectorized.json");

    if !deterministic {
        for d in &divergences {
            eprintln!("DIVERGENCE: {d}");
        }
        eprintln!(
            "ERROR: vectorized execution diverged from the row-at-a-time \
             oracle ({} case(s)) — failing hard",
            divergences.len()
        );
        std::process::exit(1);
    }

    if speedup_scan_serial < 2.0 {
        println!(
            "WARNING: serial scan-filter speedup {speedup_scan_serial:.2}× \
             below the 2× target"
        );
    }
}
