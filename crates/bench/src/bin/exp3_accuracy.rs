//! Experiment 3 (Figure 10): accuracy of the reuse-aware cost estimates.
//!
//! Warms the cache with a medium-reuse trace, then, for every connected
//! sub-plan group of a 5-way join query (CO, COL, COLS, …, LP), compares the
//! optimizer's estimated cost against the measured runtime for both the
//! reuse-aware choice and a fresh (never-share) plan. Costs are normalized
//! per group (the cheapest actual = 1.0), exactly like the paper's plot.
//!
//! ```text
//! cargo run -p hashstash-bench --bin exp3_accuracy --release
//! ```

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

use hashstash::{Database, EngineStrategy};
use hashstash_bench::common::{catalog, header, seed};
use hashstash_plan::{JoinGraph, QueryBuilder, QuerySpec};
use hashstash_workload::session::exp2_session;
use hashstash_workload::trace::{generate_trace, ReusePotential, TraceConfig};

/// Sub-query over a subset of the 5-way query's tables.
fn subquery(base: &QuerySpec, tables: &BTreeSet<Arc<str>>, id: u32) -> Option<QuerySpec> {
    let edges = base.edges_within(tables);
    if tables.len() > 1 && edges.len() < tables.len() - 1 {
        return None; // disconnected
    }
    let mut b = QueryBuilder::new(id);
    for t in tables {
        b = b.table(t);
    }
    for e in &edges {
        b = b.join(&e.left_table, &e.left_col, &e.right_table, &e.right_col);
    }
    for (attr, iv) in base.predicates.constrained() {
        let t = attr.split('.').next().unwrap_or("");
        if tables.contains(t) {
            b = b.filter(attr, iv.clone());
        }
    }
    // Project one join column to keep outputs small.
    let proj = edges
        .first()
        .map(|e| e.left_col.to_string())
        .unwrap_or_else(|| format!("{}.{}", tables.iter().next().unwrap(), "?"));
    b = b.project(&[&proj]);
    b.build().ok()
}

fn label(tables: &BTreeSet<Arc<str>>) -> String {
    tables
        .iter()
        .map(|t| t.chars().next().unwrap().to_ascii_uppercase())
        .collect()
}

fn main() {
    header("Experiment 3: accuracy of the cost model (paper Figure 10)");
    let base = exp2_session()[0].query.clone();
    let graph = JoinGraph::of_query(&base);

    // Warm a HashStash database with the medium-reuse trace prefix.
    let warm_db = Database::open(catalog());
    let mut warm = warm_db.session();
    let trace = generate_trace(TraceConfig::paper(ReusePotential::Medium, seed()));
    for tq in trace.iter().take(16) {
        warm.execute(&tq.query).expect("warm-up query");
    }
    // Also run the base query once so multi-table sub-plans have candidates.
    warm.execute(&base).expect("base query");

    println!(
        "\n{:<8} {:<8} {:>12} {:>12}  (normalized per group: cheapest actual = 1.0)",
        "group", "variant", "estimated", "actual"
    );

    let mut hits = 0usize;
    let mut groups = 0usize;
    let full = graph.all();
    let mut masks: Vec<u64> = (1..=full).filter(|m| m & full == *m).collect();
    masks.sort_by_key(|m| m.count_ones());
    let mut qid = 1000u32;
    for mask in masks {
        if mask.count_ones() < 2 || !graph.is_connected(mask) {
            continue;
        }
        let tables = graph.tables_of_mask(mask);
        qid += 1;
        let Some(q) = subquery(&base, &tables, qid) else {
            continue;
        };
        // Variant 1: reuse-aware (warmed cache).
        let est_reuse = match warm.plan_only(&q) {
            Ok(p) => p.est_cost_ns,
            Err(_) => continue,
        };
        let t0 = Instant::now();
        if warm.execute(&q).is_err() {
            continue;
        }
        let act_reuse = t0.elapsed().as_nanos() as f64;

        // Variant 2: fresh plan in a no-reuse database.
        let fresh_db = Database::builder(catalog())
            .strategy(EngineStrategy::NoReuse)
            .build();
        let mut fresh = fresh_db.session();
        let est_fresh = fresh.plan_only(&q).expect("plans").est_cost_ns;
        let t1 = Instant::now();
        fresh.execute(&q).expect("fresh run");
        let act_fresh = t1.elapsed().as_nanos() as f64;

        // Normalize inside the group.
        let act_min = act_reuse.min(act_fresh);
        let est_min = est_reuse.min(est_fresh);
        let rows = [
            ("reuse", est_reuse / est_min, act_reuse / act_min),
            ("fresh", est_fresh / est_min, act_fresh / act_min),
        ];
        for (name, e, a) in rows {
            println!("{:<8} {:<8} {:>12.2} {:>12.2}", label(&tables), name, e, a);
        }
        groups += 1;
        // Does the estimator pick the same winner as reality?
        let est_winner_reuse = est_reuse <= est_fresh;
        let act_winner_reuse = act_reuse <= act_fresh;
        if est_winner_reuse == act_winner_reuse {
            hits += 1;
        }
    }
    println!(
        "\nestimator picked the actually-cheapest variant in {hits}/{groups} groups \
         (paper: the cheapest estimated plan per group is also the cheapest actual)"
    );
}
