//! Exp 8: intra-query morsel parallelism on the Figure-9 operator mix.
//!
//! The operators whose reuse effects Figure 9 measures — base-table scan,
//! hash-join build + probe, exact-reuse probe, and the post-filter pass of
//! subsuming reuse — are exactly the loops the morsel scheduler fans out,
//! plus a **build-bound phase** (pure join build, fresh aggregate build)
//! exercising the partitioned parallel build. This experiment runs that mix
//! at W ∈ {1, 2, 4, 8} workers against the same data and reports the
//! wall-clock speedup (overall and build-only) over the serial interpreter.
//!
//! Determinism is a **hard error**, smoke mode included: every iteration's
//! full output digest (row contents *and* order) is compared against the
//! serial reference and against the worker count's own first iteration; any
//! divergence is recorded in the JSON (`"deterministic": false`) and the
//! process exits non-zero, so CI fails loudly instead of archiving a bad
//! artifact silently.
//!
//! Output: a human-readable table plus `BENCH_parallel.json` (uploaded by
//! CI as an artifact). Smoke mode (`HASHSTASH_SMOKE=1`) shrinks the row
//! counts and iteration count so the run finishes in seconds. Speedup is
//! bounded by the machine: `available_cores` is recorded in the JSON so a
//! 1-core container's ~1× is interpretable.

use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hashstash_bench::common::{header, ms};
use hashstash_cache::recycle::ShapeKey;
use hashstash_cache::{GcConfig, HtManager, DEFAULT_SHARDS};
use hashstash_exec::plan::{OutputAgg, PhysicalPlan, ReuseSpec, ScanSpec};
use hashstash_exec::{execute, ExecContext, TempTableCache};
use hashstash_plan::{
    AggExpr, AggFunc, HtFingerprint, HtKind, Interval, JoinEdge, PredBox, Region, ReuseCase,
};
use hashstash_storage::{Catalog, TableBuilder};
use hashstash_types::{DataType, Value};

fn smoke() -> bool {
    std::env::var("HASHSTASH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Synthetic star schema sized to make the probe/scan loops the hot path:
/// `dim(d_key, d_attr)` with one row per key, `fact(f_key)` with fan-out 4.
fn synth(n: i64) -> Catalog {
    let mut cat = Catalog::new();
    let mut d = TableBuilder::new(
        "dim",
        vec![("d_key", DataType::Int), ("d_attr", DataType::Int)],
    );
    for i in 0..n {
        d.push_row(vec![Value::Int(i), Value::Int(i % 1000)]);
    }
    cat.register(d.finish());
    let mut f = TableBuilder::new("fact", vec![("f_key", DataType::Int)]);
    for i in 0..n * 4 {
        f.push_row(vec![Value::Int(i % n)]);
    }
    cat.register(f.finish());
    cat
}

fn dim_fingerprint(region: Region) -> HtFingerprint {
    HtFingerprint {
        kind: HtKind::JoinBuild,
        tables: std::iter::once(Arc::from("dim")).collect(),
        edges: vec![],
        region,
        key_attrs: vec![Arc::from("dim.d_key")],
        payload_attrs: vec![Arc::from("dim.d_key"), Arc::from("dim.d_attr")],
        aggregates: vec![],
        tagged: false,
    }
}

/// Golden cross-check run before any measurement: the bench and the engine
/// must agree on shard routing. Pins `ShapeKey::stable_hash` of the same
/// canonical join fingerprint as `tests/durability_recovery.rs`'s golden
/// test, and the shard it lands on at the default shard count — a drift
/// here means bench numbers and engine behaviour are describing different
/// shards.
fn assert_engine_shard_routing() {
    let fp = HtFingerprint {
        kind: HtKind::JoinBuild,
        tables: ["customer", "orders"].into_iter().map(Arc::from).collect(),
        edges: vec![JoinEdge::new(
            "customer",
            "customer.c_custkey",
            "orders",
            "orders.o_custkey",
        )],
        region: Region::all(),
        key_attrs: vec![Arc::from("customer.c_custkey")],
        payload_attrs: vec![Arc::from("customer.c_age")],
        aggregates: vec![],
        tagged: false,
    };
    let h = ShapeKey::of(&fp).stable_hash();
    assert_eq!(
        h, 0x6894_58a4_d0e0_8586,
        "ShapeKey::stable_hash drifted from the engine's golden value"
    );
    assert_eq!(
        (h % DEFAULT_SHARDS as u64) as usize,
        6,
        "canonical fingerprint routes to a different shard than the engine"
    );
}

fn join(build: Option<PhysicalPlan>, reuse: Option<ReuseSpec>) -> PhysicalPlan {
    PhysicalPlan::HashJoin {
        probe: Box::new(PhysicalPlan::Scan(ScanSpec::full("fact"))),
        build: build.map(Box::new),
        probe_key: "fact.f_key".into(),
        build_key: "dim.d_key".into(),
        reuse,
        publish: None,
    }
}

fn main() {
    assert_engine_shard_routing();
    let smoke = smoke();
    let n: i64 = if smoke { 20_000 } else { 150_000 };
    let iters = if smoke { 3 } else { 8 };
    let worker_counts = [1usize, 2, 4, 8];
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);

    header("Exp 8: morsel-driven intra-query parallelism (Fig. 9 operator mix)");
    println!(
        "dim rows {n}, fact rows {}, {iters} iterations/mix, {cores} cores, smoke={smoke}",
        n * 4
    );

    let cat = synth(n);
    let htm = HtManager::new(GcConfig::default());
    let temps = TempTableCache::unbounded();

    // Warm the cache once: the exact-reuse and subsuming-reuse legs of the
    // mix probe this table (read-only shared checkouts, any worker count).
    let fp = dim_fingerprint(Region::all());
    {
        let warm = PhysicalPlan::HashJoin {
            probe: Box::new(PhysicalPlan::Scan(ScanSpec {
                table: "fact".into(),
                region: Region::empty(),
                projection: vec![],
            })),
            build: Some(Box::new(PhysicalPlan::Scan(ScanSpec::full("dim")))),
            probe_key: "fact.f_key".into(),
            build_key: "dim.d_key".into(),
            reuse: None,
            publish: Some(fp.clone()),
        };
        let mut ctx = ExecContext::new(&cat, &htm, &temps).with_parallelism(1);
        execute(&warm, &mut ctx).expect("warm-up");
    }
    let cand = htm.candidates(&fp).remove(0);

    // The Fig. 9 operator mix.
    let scan_pred = PredBox::all().with(
        "dim.d_attr",
        Interval::closed(Value::Int(0), Value::Int(499)),
    );
    let narrow = PredBox::all().with(
        "dim.d_attr",
        Interval::closed(Value::Int(0), Value::Int(249)),
    );
    // (name, build_bound, plan): the build-bound entries isolate the
    // partitioned parallel build — an empty probe side (pure join build)
    // and a fresh aggregate (all insert/update work, no probe at all).
    let mix: Vec<(&str, bool, PhysicalPlan)> = vec![
        (
            "scan",
            false,
            PhysicalPlan::Scan(ScanSpec::filtered("dim", scan_pred)),
        ),
        (
            "fresh_join",
            false,
            join(Some(PhysicalPlan::Scan(ScanSpec::full("dim"))), None),
        ),
        (
            "exact_reuse_probe",
            false,
            join(
                None,
                Some(ReuseSpec {
                    id: cand.id,
                    case: ReuseCase::Exact,
                    post_filter: None,
                    request_region: Region::all(),
                    cached_region: cand.fingerprint.region.clone(),
                    schema: cand.schema.clone(),
                }),
            ),
        ),
        (
            "subsuming_reuse_filter",
            false,
            join(
                None,
                Some(ReuseSpec {
                    id: cand.id,
                    case: ReuseCase::Subsuming,
                    post_filter: Some(narrow.clone()),
                    request_region: Region::from_box(narrow),
                    cached_region: cand.fingerprint.region.clone(),
                    schema: cand.schema.clone(),
                }),
            ),
        ),
        (
            "join_build_bound",
            true,
            // Build-dominated, but with a *chain-order-observable* output:
            // the build keys on d_attr (n/1000 duplicates per key), and the
            // small probe slice emits each key's matches in collision-chain
            // order — so the divergence digest would catch a build whose
            // chain layout varied with the worker count. An empty probe
            // would leave the build unobservable here.
            PhysicalPlan::HashJoin {
                probe: Box::new(PhysicalPlan::Scan(
                    ScanSpec::filtered(
                        "dim",
                        PredBox::all().with(
                            "dim.d_attr",
                            Interval::closed(Value::Int(0), Value::Int(20)),
                        ),
                    )
                    .project(&["dim.d_attr"]),
                )),
                build: Some(Box::new(PhysicalPlan::Scan(ScanSpec::full("dim")))),
                probe_key: "dim.d_attr".into(),
                build_key: "dim.d_attr".into(),
                reuse: None,
                publish: None,
            },
        ),
        (
            "agg_build_bound",
            true,
            PhysicalPlan::HashAggregate {
                input: Some(Box::new(PhysicalPlan::Scan(ScanSpec::full("dim")))),
                group_by: vec!["dim.d_attr".into()],
                aggs: vec![
                    AggExpr::new(AggFunc::Sum, "dim.d_key"),
                    AggExpr::new(AggFunc::Count, "dim.d_key"),
                ],
                output_aggs: vec![OutputAgg::Direct(0), OutputAgg::Direct(1)],
                reuse: None,
                publish: None,
                post_group_by: None,
            },
        ),
    ];

    // Per-plan digest of the full output — row contents *and* order — so a
    // determinism regression that preserves cardinality still fails here.
    // FNV-1a via StableHasher, so digests are also comparable across runs
    // and processes (DefaultHasher is seeded per process).
    fn digest(rows: &[hashstash_types::Row]) -> (usize, u64) {
        use std::hash::{Hash, Hasher};
        let mut h = hashstash_types::StableHasher::new();
        for r in rows {
            r.hash(&mut h);
        }
        (rows.len(), h.finish())
    }

    // Divergence — across worker counts *or* across iterations of one
    // worker count — is a hard error (recorded in the JSON, then exit 1),
    // in smoke mode and full mode alike.
    let mut reference: Option<Vec<(usize, u64)>> = None;
    let mut divergences: Vec<String> = Vec::new();
    let mut rows_table: Vec<(usize, f64, f64, f64, f64)> = Vec::new();
    for &workers in &worker_counts {
        let mut wall = Duration::ZERO;
        let mut build_wall = Duration::ZERO;
        for iter in 0..iters {
            let mut digests = Vec::with_capacity(mix.len());
            for (name, build_bound, plan) in &mix {
                let t0 = Instant::now();
                let mut ctx = ExecContext::new(&cat, &htm, &temps).with_parallelism(workers);
                let (_, rows) = execute(plan, &mut ctx).expect(name);
                let dt = t0.elapsed();
                wall += dt;
                if *build_bound {
                    build_wall += dt;
                }
                digests.push(digest(&rows));
            }
            // One check covers both divergence shapes (cross-worker and
            // cross-iteration): the reference is iteration 0 of the serial
            // interpreter, so each event is reported exactly once.
            match &reference {
                None => reference = Some(digests),
                Some(want) if want != &digests => divergences.push(format!(
                    "{workers} workers, iteration {iter}: output diverged from the \
                     serial reference (1 worker, iteration 0)"
                )),
                Some(_) => {}
            }
        }
        rows_table.push((workers, ms(wall), 0.0, ms(build_wall), 0.0));
    }
    let serial_ms = rows_table[0].1;
    let serial_build_ms = rows_table[0].3;
    for row in &mut rows_table {
        row.2 = serial_ms / row.1;
        row.4 = serial_build_ms / row.3;
    }
    for (workers, wall, speedup, build_wall, build_speedup) in &rows_table {
        println!(
            "{workers:>2} workers: {wall:>10.2} ms (speedup {speedup:>5.2}×)  |  \
             build-bound {build_wall:>10.2} ms (speedup {build_speedup:>5.2}×)"
        );
    }
    let at_4 = rows_table.iter().find(|r| r.0 == 4);
    let speedup_at_4 = at_4.map(|r| r.2).unwrap_or(0.0);
    let build_speedup_at_4 = at_4.map(|r| r.4).unwrap_or(0.0);
    let deterministic = divergences.is_empty();

    let results: Vec<String> = rows_table
        .iter()
        .map(|(workers, wall, speedup, build_wall, build_speedup)| {
            format!(
                "    {{\"workers\": {workers}, \"wall_ms\": {wall:.3}, \"speedup\": {speedup:.3}, \
                 \"build_wall_ms\": {build_wall:.3}, \"build_speedup\": {build_speedup:.3}}}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"parallel\",\n  \"smoke\": {smoke},\n  \"dim_rows\": {n},\n  \"fact_rows\": {},\n  \"iterations\": {iters},\n  \"available_cores\": {cores},\n  \"operator_mix\": [\"scan\", \"fresh_join\", \"exact_reuse_probe\", \"subsuming_reuse_filter\", \"join_build_bound\", \"agg_build_bound\"],\n  \"build_bound_mix\": [\"join_build_bound\", \"agg_build_bound\"],\n  \"deterministic\": {deterministic},\n  \"speedup_at_4_workers\": {speedup_at_4:.3},\n  \"build_speedup_at_4_workers\": {build_speedup_at_4:.3},\n  \"results\": [\n{}\n  ]\n}}\n",
        n * 4,
        results.join(",\n")
    );
    let mut f = std::fs::File::create("BENCH_parallel.json").expect("write results");
    f.write_all(json.as_bytes()).unwrap();
    println!("\nwrote BENCH_parallel.json");

    if !deterministic {
        for d in &divergences {
            eprintln!("DIVERGENCE: {d}");
        }
        eprintln!(
            "ERROR: parallel execution diverged from the serial interpreter \
             ({} case(s)) — failing hard",
            divergences.len()
        );
        std::process::exit(1);
    }

    if cores >= 4 && speedup_at_4 < 2.0 {
        println!(
            "WARNING: 4-worker speedup {speedup_at_4:.2}× below the 2× target on a {cores}-core machine"
        );
    } else if cores < 4 {
        println!(
            "NOTE: only {cores} core(s) visible — wall-clock speedup is hardware-bound; \
             determinism and scheduling overhead are still exercised"
        );
    }
}
