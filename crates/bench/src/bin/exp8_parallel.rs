//! Exp 8: intra-query morsel parallelism on the Figure-9 operator mix.
//!
//! The operators whose reuse effects Figure 9 measures — base-table scan,
//! hash-join build + probe, exact-reuse probe, and the post-filter pass of
//! subsuming reuse — are exactly the loops the morsel scheduler fans out,
//! plus a **build-bound phase** (pure join build, fresh aggregate build)
//! exercising the partitioned parallel build. This experiment runs that mix
//! at W ∈ {1, 2, 4, 8} workers against the same data and reports the
//! wall-clock speedup (overall and build-only) over the serial interpreter.
//!
//! Determinism is a **hard error**, smoke mode included: every iteration's
//! full output digest (row contents *and* order) is compared against the
//! serial reference and against the worker count's own first iteration; any
//! divergence is recorded in the JSON (`"deterministic": false`) and the
//! process exits non-zero, so CI fails loudly instead of archiving a bad
//! artifact silently.
//!
//! All worker counts share **one** persistent `WorkerPool` — the engine's
//! execution model — and the run additionally measures the per-phase
//! dispatch overhead of that pool (cold = first submission after spawn,
//! warm = steady state) against the retired spawn-per-phase scoped-thread
//! baseline, so the spawn-tax fix is visible even where wall-clock speedup
//! is hardware-bound.
//!
//! Output: a human-readable table plus `BENCH_parallel.json` (uploaded by
//! CI as an artifact). Smoke mode (`HASHSTASH_SMOKE=1`) shrinks the row
//! counts so the run finishes in seconds (the iteration count stays at
//! eight — worker counts are interleaved across iterations, and the
//! per-count median needs that many samples to shrug off host noise
//! bursts). Speedup is
//! bounded by the machine: `available_cores` is recorded in the JSON so a
//! 1-core container's ~1× is interpretable.

use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hashstash_bench::common::{header, ms};
use hashstash_cache::recycle::ShapeKey;
use hashstash_cache::{GcConfig, HtManager, DEFAULT_SHARDS};
use hashstash_exec::parallel::{morsel_count, run_morsels};
use hashstash_exec::plan::{OutputAgg, PhysicalPlan, ReuseSpec, ScanSpec};
use hashstash_exec::{
    execute, min_parallel_morsels, ExecContext, Scheduler, TempTableCache, WorkerPool, MORSEL_ROWS,
};
use hashstash_plan::{
    AggExpr, AggFunc, HtFingerprint, HtKind, Interval, JoinEdge, PredBox, Region, ReuseCase,
};
use hashstash_storage::{Catalog, TableBuilder};
use hashstash_types::{DataType, Value};

fn smoke() -> bool {
    std::env::var("HASHSTASH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Synthetic star schema sized to make the probe/scan loops the hot path:
/// `dim(d_key, d_attr)` with one row per key, `fact(f_key)` with fan-out 4.
fn synth(n: i64) -> Catalog {
    let mut cat = Catalog::new();
    let mut d = TableBuilder::new(
        "dim",
        vec![("d_key", DataType::Int), ("d_attr", DataType::Int)],
    );
    for i in 0..n {
        d.push_row(vec![Value::Int(i), Value::Int(i % 1000)]);
    }
    cat.register(d.finish());
    let mut f = TableBuilder::new("fact", vec![("f_key", DataType::Int)]);
    for i in 0..n * 4 {
        f.push_row(vec![Value::Int(i % n)]);
    }
    cat.register(f.finish());
    cat
}

fn dim_fingerprint(region: Region) -> HtFingerprint {
    HtFingerprint {
        kind: HtKind::JoinBuild,
        tables: std::iter::once(Arc::from("dim")).collect(),
        edges: vec![],
        region,
        key_attrs: vec![Arc::from("dim.d_key")],
        payload_attrs: vec![Arc::from("dim.d_key"), Arc::from("dim.d_attr")],
        aggregates: vec![],
        tagged: false,
    }
}

/// Golden cross-check run before any measurement: the bench and the engine
/// must agree on shard routing. Pins `ShapeKey::stable_hash` of the same
/// canonical join fingerprint as `tests/durability_recovery.rs`'s golden
/// test, and the shard it lands on at the default shard count — a drift
/// here means bench numbers and engine behaviour are describing different
/// shards.
fn assert_engine_shard_routing() {
    let fp = HtFingerprint {
        kind: HtKind::JoinBuild,
        tables: ["customer", "orders"].into_iter().map(Arc::from).collect(),
        edges: vec![JoinEdge::new(
            "customer",
            "customer.c_custkey",
            "orders",
            "orders.o_custkey",
        )],
        region: Region::all(),
        key_attrs: vec![Arc::from("customer.c_custkey")],
        payload_attrs: vec![Arc::from("customer.c_age")],
        aggregates: vec![],
        tagged: false,
    };
    let h = ShapeKey::of(&fp).stable_hash();
    assert_eq!(
        h, 0x6894_58a4_d0e0_8586,
        "ShapeKey::stable_hash drifted from the engine's golden value"
    );
    assert_eq!(
        (h % DEFAULT_SHARDS as u64) as usize,
        6,
        "canonical fingerprint routes to a different shard than the engine"
    );
}

/// Per-phase dispatch overhead of a persistent pool, in nanoseconds:
/// submit the smallest above-threshold phase (near-zero real work per
/// morsel) and time the whole submit→quiesce round trip. Returns
/// `(cold, warm)` — the first submission after the pool spawns, then the
/// steady-state mean.
fn measure_pool_dispatch(workers: usize, iters: u32) -> (f64, f64) {
    let pool = WorkerPool::new(workers.saturating_sub(1), false);
    let sched = Scheduler {
        parallelism: workers,
        pool: Some(&pool),
    };
    let total = MORSEL_ROWS * min_parallel_morsels();
    let phase = || {
        let t0 = Instant::now();
        std::hint::black_box(run_morsels(sched, total, |r| r.len()));
        t0.elapsed()
    };
    let cold = phase();
    let mut warm = Duration::ZERO;
    for _ in 0..iters {
        warm += phase();
    }
    (
        cold.as_nanos() as f64,
        warm.as_nanos() as f64 / f64::from(iters),
    )
}

/// The same phase under the retired execution model — spawn `workers`
/// scoped threads, claim morsels off an atomic counter, join — so the
/// JSON records what the pool is being compared against.
fn measure_spawn_baseline(workers: usize, iters: u32) -> f64 {
    let total = MORSEL_ROWS * min_parallel_morsels();
    let morsels = morsel_count(total);
    let mut wall = Duration::ZERO;
    for _ in 0..iters {
        let t0 = Instant::now();
        let next = std::sync::atomic::AtomicUsize::new(0);
        // tidy:allow(no-raw-spawn): measures the retired spawn-per-phase baseline
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    let mut claimed = 0usize;
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= morsels {
                            break;
                        }
                        claimed += MORSEL_ROWS.min(total - i * MORSEL_ROWS);
                    }
                    std::hint::black_box(claimed);
                });
            }
        });
        wall += t0.elapsed();
    }
    wall.as_nanos() as f64 / f64::from(iters)
}

fn join(build: Option<PhysicalPlan>, reuse: Option<ReuseSpec>) -> PhysicalPlan {
    PhysicalPlan::HashJoin {
        probe: Box::new(PhysicalPlan::Scan(ScanSpec::full("fact"))),
        build: build.map(Box::new),
        probe_key: "fact.f_key".into(),
        build_key: "dim.d_key".into(),
        reuse,
        publish: None,
    }
}

fn main() {
    assert_engine_shard_routing();
    let smoke = smoke();
    let n: i64 = if smoke { 20_000 } else { 150_000 };
    let iters = 8;
    let worker_counts = [1usize, 2, 4, 8];
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);

    header("Exp 8: morsel-driven intra-query parallelism (Fig. 9 operator mix)");
    println!(
        "dim rows {n}, fact rows {}, {iters} iterations/mix, {cores} cores, smoke={smoke}",
        n * 4
    );

    let cat = synth(n);
    let htm = HtManager::new(GcConfig::default());
    let temps = TempTableCache::unbounded();
    // One persistent pool shared by every worker count below — exactly the
    // engine's execution model (a Database owns one pool for all sessions).
    // Sized for the largest count in the sweep (the caller participates,
    // so W workers need W-1 pool threads).
    let pool = WorkerPool::new(worker_counts.iter().max().unwrap() - 1, false);

    // Warm the cache once: the exact-reuse and subsuming-reuse legs of the
    // mix probe this table (read-only shared checkouts, any worker count).
    let fp = dim_fingerprint(Region::all());
    {
        let warm = PhysicalPlan::HashJoin {
            probe: Box::new(PhysicalPlan::Scan(ScanSpec {
                table: "fact".into(),
                region: Region::empty(),
                projection: vec![],
            })),
            build: Some(Box::new(PhysicalPlan::Scan(ScanSpec::full("dim")))),
            probe_key: "fact.f_key".into(),
            build_key: "dim.d_key".into(),
            reuse: None,
            publish: Some(fp.clone()),
        };
        let mut ctx = ExecContext::new(&cat, &htm, &temps).with_parallelism(1);
        execute(&warm, &mut ctx).expect("warm-up");
    }
    let cand = htm.candidates(&fp).remove(0);

    // The Fig. 9 operator mix.
    let scan_pred = PredBox::all().with(
        "dim.d_attr",
        Interval::closed(Value::Int(0), Value::Int(499)),
    );
    let narrow = PredBox::all().with(
        "dim.d_attr",
        Interval::closed(Value::Int(0), Value::Int(249)),
    );
    // (name, build_bound, plan): the build-bound entries isolate the
    // partitioned parallel build — an empty probe side (pure join build)
    // and a fresh aggregate (all insert/update work, no probe at all).
    let mix: Vec<(&str, bool, PhysicalPlan)> = vec![
        (
            "scan",
            false,
            PhysicalPlan::Scan(ScanSpec::filtered("dim", scan_pred)),
        ),
        (
            "fresh_join",
            false,
            join(Some(PhysicalPlan::Scan(ScanSpec::full("dim"))), None),
        ),
        (
            "exact_reuse_probe",
            false,
            join(
                None,
                Some(ReuseSpec {
                    id: cand.id,
                    case: ReuseCase::Exact,
                    post_filter: None,
                    request_region: Region::all(),
                    cached_region: cand.fingerprint.region.clone(),
                    schema: cand.schema.clone(),
                }),
            ),
        ),
        (
            "subsuming_reuse_filter",
            false,
            join(
                None,
                Some(ReuseSpec {
                    id: cand.id,
                    case: ReuseCase::Subsuming,
                    post_filter: Some(narrow.clone()),
                    request_region: Region::from_box(narrow),
                    cached_region: cand.fingerprint.region.clone(),
                    schema: cand.schema.clone(),
                }),
            ),
        ),
        (
            "join_build_bound",
            true,
            // Build-dominated, but with a *chain-order-observable* output:
            // the build keys on d_attr (n/1000 duplicates per key), and the
            // small probe slice emits each key's matches in collision-chain
            // order — so the divergence digest would catch a build whose
            // chain layout varied with the worker count. An empty probe
            // would leave the build unobservable here.
            PhysicalPlan::HashJoin {
                probe: Box::new(PhysicalPlan::Scan(
                    ScanSpec::filtered(
                        "dim",
                        PredBox::all().with(
                            "dim.d_attr",
                            Interval::closed(Value::Int(0), Value::Int(20)),
                        ),
                    )
                    .project(&["dim.d_attr"]),
                )),
                build: Some(Box::new(PhysicalPlan::Scan(ScanSpec::full("dim")))),
                probe_key: "dim.d_attr".into(),
                build_key: "dim.d_attr".into(),
                reuse: None,
                publish: None,
            },
        ),
        (
            "agg_build_bound",
            true,
            PhysicalPlan::HashAggregate {
                input: Some(Box::new(PhysicalPlan::Scan(ScanSpec::full("dim")))),
                group_by: vec!["dim.d_attr".into()],
                aggs: vec![
                    AggExpr::new(AggFunc::Sum, "dim.d_key"),
                    AggExpr::new(AggFunc::Count, "dim.d_key"),
                ],
                output_aggs: vec![OutputAgg::Direct(0), OutputAgg::Direct(1)],
                reuse: None,
                publish: None,
                post_group_by: None,
            },
        ),
    ];

    // Per-plan digest of the full output — row contents *and* order — so a
    // determinism regression that preserves cardinality still fails here.
    // FNV-1a via StableHasher, so digests are also comparable across runs
    // and processes (DefaultHasher is seeded per process).
    fn digest(rows: &[hashstash_types::Row]) -> (usize, u64) {
        use std::hash::{Hash, Hasher};
        let mut h = hashstash_types::StableHasher::new();
        for r in rows {
            r.hash(&mut h);
        }
        (rows.len(), h.finish())
    }

    // Divergence — across worker counts *or* across iterations of one
    // worker count — is a hard error (recorded in the JSON, then exit 1),
    // in smoke mode and full mode alike.
    let mut reference: Option<Vec<(usize, u64)>> = None;
    let mut divergences: Vec<String> = Vec::new();
    let mut wall: Vec<Vec<Duration>> = vec![Vec::new(); worker_counts.len()];
    let mut build_wall: Vec<Vec<Duration>> = vec![Vec::new(); worker_counts.len()];
    // Worker counts are *interleaved* across iterations (1, 2, 4, 8, 1, 2,
    // …) rather than measured in contiguous blocks, so slow drift —
    // frequency scaling, page-cache warming, a noisy neighbour — lands on
    // every count equally instead of biasing whole rows. Iteration 0 warms
    // every count untimed (its outputs still feed the divergence check).
    // Reported wall times are the *median* over iterations: a neighbour
    // burst that lands inside one iteration inflates the mean of whichever
    // worker count it hit, while the median simply discards it.
    for iter in 0..=iters {
        for (w, &workers) in worker_counts.iter().enumerate() {
            let mut iter_wall = Duration::ZERO;
            let mut iter_build = Duration::ZERO;
            let mut digests = Vec::with_capacity(mix.len());
            for (name, build_bound, plan) in &mix {
                let t0 = Instant::now();
                let mut ctx = ExecContext::new(&cat, &htm, &temps)
                    .with_parallelism(workers)
                    .with_pool(&pool);
                let (_, rows) = execute(plan, &mut ctx).expect(name);
                let dt = t0.elapsed();
                iter_wall += dt;
                if *build_bound {
                    iter_build += dt;
                }
                if std::env::var("EXP8_LEGS").is_ok() {
                    eprintln!("LEG {workers} {name} {:.1}", dt.as_secs_f64() * 1e6);
                }
                digests.push(digest(&rows));
            }
            if iter > 0 {
                wall[w].push(iter_wall);
                build_wall[w].push(iter_build);
            }
            // One check covers both divergence shapes (cross-worker and
            // cross-iteration): the reference is the first pass of the
            // serial interpreter, so each event is reported exactly once.
            match &reference {
                None => reference = Some(digests),
                Some(want) if want != &digests => divergences.push(format!(
                    "{workers} workers, iteration {iter}: output diverged from the \
                     serial reference (1 worker, warm-up pass)"
                )),
                Some(_) => {}
            }
        }
    }
    fn median(samples: &[Duration]) -> Duration {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let mid = sorted.len() / 2;
        if sorted.len().is_multiple_of(2) && mid > 0 {
            (sorted[mid - 1] + sorted[mid]) / 2
        } else {
            sorted[mid]
        }
    }
    let mut rows_table: Vec<(usize, f64, f64, f64, f64)> = worker_counts
        .iter()
        .enumerate()
        .map(|(w, &workers)| {
            (
                workers,
                ms(median(&wall[w])),
                0.0,
                ms(median(&build_wall[w])),
                0.0,
            )
        })
        .collect();
    let serial_ms = rows_table[0].1;
    let serial_build_ms = rows_table[0].3;
    for row in &mut rows_table {
        row.2 = serial_ms / row.1;
        row.4 = serial_build_ms / row.3;
    }
    for (workers, wall, speedup, build_wall, build_speedup) in &rows_table {
        println!(
            "{workers:>2} workers: {wall:>10.2} ms (speedup {speedup:>5.2}×)  |  \
             build-bound {build_wall:>10.2} ms (speedup {build_speedup:>5.2}×)"
        );
    }
    let at_4 = rows_table.iter().find(|r| r.0 == 4);
    let speedup_at_4 = at_4.map(|r| r.2).unwrap_or(0.0);
    let build_speedup_at_4 = at_4.map(|r| r.4).unwrap_or(0.0);
    let deterministic = divergences.is_empty();

    // Per-phase dispatch overhead: warm pool vs the retired
    // spawn-per-phase model, at the sweep's midpoint worker count.
    let dispatch_iters = if smoke { 64 } else { 512 };
    let (dispatch_cold, dispatch_warm) = measure_pool_dispatch(4, dispatch_iters);
    let spawn_baseline = measure_spawn_baseline(4, dispatch_iters);
    let dispatch_improvement = spawn_baseline / dispatch_warm.max(1.0);
    println!(
        "\nper-phase dispatch (4 workers): pool cold {:.1} µs, pool warm {:.1} µs, \
         spawn-per-phase baseline {:.1} µs ({dispatch_improvement:.1}× lower warm)",
        dispatch_cold / 1_000.0,
        dispatch_warm / 1_000.0,
        spawn_baseline / 1_000.0
    );

    let results: Vec<String> = rows_table
        .iter()
        .map(|(workers, wall, speedup, build_wall, build_speedup)| {
            format!(
                "    {{\"workers\": {workers}, \"wall_ms\": {wall:.3}, \"speedup\": {speedup:.3}, \
                 \"build_wall_ms\": {build_wall:.3}, \"build_speedup\": {build_speedup:.3}}}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"parallel\",\n  \"smoke\": {smoke},\n  \"dim_rows\": {n},\n  \"fact_rows\": {},\n  \"iterations\": {iters},\n  \"available_cores\": {cores},\n  \"operator_mix\": [\"scan\", \"fresh_join\", \"exact_reuse_probe\", \"subsuming_reuse_filter\", \"join_build_bound\", \"agg_build_bound\"],\n  \"build_bound_mix\": [\"join_build_bound\", \"agg_build_bound\"],\n  \"deterministic\": {deterministic},\n  \"speedup_at_4_workers\": {speedup_at_4:.3},\n  \"build_speedup_at_4_workers\": {build_speedup_at_4:.3},\n  \"dispatch\": {{\"workers\": 4, \"pool_cold_ns\": {dispatch_cold:.0}, \"pool_warm_ns\": {dispatch_warm:.0}, \"spawn_baseline_ns\": {spawn_baseline:.0}, \"warm_improvement\": {dispatch_improvement:.1}}},\n  \"results\": [\n{}\n  ]\n}}\n",
        n * 4,
        results.join(",\n")
    );
    let mut f = std::fs::File::create("BENCH_parallel.json").expect("write results");
    f.write_all(json.as_bytes()).unwrap();
    println!("\nwrote BENCH_parallel.json");

    if !deterministic {
        for d in &divergences {
            eprintln!("DIVERGENCE: {d}");
        }
        eprintln!(
            "ERROR: parallel execution diverged from the serial interpreter \
             ({} case(s)) — failing hard",
            divergences.len()
        );
        std::process::exit(1);
    }

    if cores >= 4 && speedup_at_4 < 2.0 {
        println!(
            "WARNING: 4-worker speedup {speedup_at_4:.2}× below the 2× target on a {cores}-core machine"
        );
    } else if cores < 4 {
        println!(
            "NOTE: only {cores} core(s) visible — wall-clock speedup is hardware-bound; \
             determinism and scheduling overhead are still exercised"
        );
    }
}
