//! Experiment 1 (Figure 7a + 7b): single-query reuse across workloads with
//! low / medium / high reuse potential.
//!
//! Runs the 64-query trace under no-reuse, materialization-based reuse and
//! HashStash, and prints the speed-up over no-reuse plus the cache
//! statistics table.
//!
//! ```text
//! cargo run -p hashstash-bench --bin exp1_single_query --release
//! ```

use hashstash::EngineStrategy;
use hashstash_bench::common::{catalog, header, mb, ms, run_trace, seed};
use hashstash_workload::trace::{average_overlap, generate_trace, ReusePotential, TraceConfig};

fn main() {
    header("Experiment 1: single-query reuse (paper Figure 7a/7b)");
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>12} {:>10} {:>10}",
        "workload", "strategy", "time (ms)", "speedup (%)", "mem (MB)", "hitratio", "reuses"
    );
    for reuse in [
        ReusePotential::Low,
        ReusePotential::Medium,
        ReusePotential::High,
    ] {
        let trace = generate_trace(TraceConfig::paper(reuse, seed()));
        let overlap = average_overlap(&trace);

        // Run strategies in isolation: collect stats, then drop the
        // database (and its caches) before the next run so allocator and
        // LLC state do not bleed between measurements.
        let t_none = {
            let (t, db) = run_trace(catalog(), EngineStrategy::NoReuse, &trace);
            drop(db);
            t
        };
        let (t_mat, mat_stats) = {
            let (t, db) = run_trace(catalog(), EngineStrategy::Materialized, &trace);
            (t, db.temp_stats())
        };
        let (t_hs, hs_stats) = {
            let (t, db) = run_trace(catalog(), EngineStrategy::HashStash, &trace);
            (t, db.cache_stats())
        };

        let speedup = |t: std::time::Duration| (1.0 - ms(t) / ms(t_none)) * 100.0;
        let label = format!("{reuse:?} ({:.0}%)", overlap * 100.0);
        println!(
            "{:<10} {:>14} {:>14.1} {:>14.1} {:>12} {:>10} {:>10}",
            label,
            "NoReuse",
            ms(t_none),
            0.0,
            "-",
            "-",
            "-"
        );
        println!(
            "{:<10} {:>14} {:>14.1} {:>14.1} {:>12.1} {:>10.2} {:>10}",
            "",
            "Materialized",
            ms(t_mat),
            speedup(t_mat),
            mb(mat_stats.bytes),
            mat_stats.hit_ratio(),
            mat_stats.reuses
        );
        println!(
            "{:<10} {:>14} {:>14.1} {:>14.1} {:>12.1} {:>10.2} {:>10}",
            "",
            "HashStash",
            ms(t_hs),
            speedup(t_hs),
            mb(hs_stats.bytes),
            hs_stats.hit_ratio(),
            hs_stats.reuses
        );
    }
    println!(
        "\nExpected shape (paper Fig 7): HashStash beats Materialized at every reuse \
         level; with low reuse Materialized is *slower* than no-reuse (it pays \
         materialization without amortizing it) while HashStash stays at parity."
    );
}
