//! Shared scaffolding for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one of the paper's tables or
//! figures (see DESIGN.md §5 for the index, EXPERIMENTS.md for results).
//! The scale factor defaults to 0.05 and can be overridden with the
//! `HASHSTASH_SF` environment variable; `HASHSTASH_SEED` overrides the data
//! seed.

pub mod common;
