//! Lowering: resolve names against a schema, type literals, and build a
//! validated [`QuerySpec`] through the existing [`QueryBuilder`] — the SQL
//! front end produces *exactly* the structure hand-built queries do, so
//! fingerprints, reuse-case classification and the cost model are
//! oblivious to where a query came from.

use std::collections::BTreeSet;

use hashstash_plan::{AggExpr, Interval, QueryBuilder, QuerySpec};
use hashstash_types::date::parse_date;
use hashstash_types::{DataType, Value};

use crate::error::SqlError;
use crate::parser::{Ast, CmpOp, ColRef, Item, Lit, LitKind, Pred};

/// Read-only schema oracle the lowering resolves names against.
///
/// Implemented for the engine's `Catalog` on the server side; tests use
/// in-memory maps. Kept minimal on purpose so this crate depends only on
/// the plan layer, not on storage.
pub trait SchemaProvider {
    /// Does a table with this name exist?
    fn has_table(&self, table: &str) -> bool;
    /// Type of `table.column`, or `None` if the column does not exist.
    fn column_type(&self, table: &str, column: &str) -> Option<DataType>;
}

/// A fully resolved column: qualified name plus type.
struct Resolved {
    qualified: String,
    dtype: DataType,
}

/// Lower a parsed [`Ast`] to a validated [`QuerySpec`] with the given
/// query id.
pub fn lower(ast: &Ast, id: u32, schema: &dyn SchemaProvider) -> Result<QuerySpec, SqlError> {
    // -- tables ----------------------------------------------------------
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for (t, span) in &ast.tables {
        if !schema.has_table(t) {
            return Err(SqlError::new(format!("unknown table `{t}`"), *span));
        }
        if !seen.insert(t.as_str()) {
            return Err(SqlError::new(
                format!(
                    "table `{t}` appears twice in FROM (aliases and self-joins are not supported)"
                ),
                *span,
            ));
        }
    }
    let tables: Vec<&str> = ast.tables.iter().map(|(t, _)| t.as_str()).collect();

    let resolve = |c: &ColRef| -> Result<Resolved, SqlError> { resolve_col(c, &tables, schema) };

    let mut b = QueryBuilder::new(id);
    for t in &tables {
        b = b.table(t);
    }

    // -- predicates ------------------------------------------------------
    for p in &ast.preds {
        match p {
            Pred::JoinEq { left, right, span } => {
                let l = resolve(left)?;
                let r = resolve(right)?;
                let (lt, rt) = match (owner_table(&l), owner_table(&r)) {
                    (Some(lt), Some(rt)) if lt != rt => (lt.to_string(), rt.to_string()),
                    _ => {
                        return Err(SqlError::new(
                            "join predicate must relate columns of two different tables",
                            *span,
                        ));
                    }
                };
                if l.dtype != r.dtype {
                    return Err(SqlError::new(
                        format!(
                            "join key types differ: {} is {:?} but {} is {:?}",
                            l.qualified, l.dtype, r.qualified, r.dtype
                        ),
                        *span,
                    ));
                }
                b = b.join(&lt, &l.qualified, &rt, &r.qualified);
            }
            Pred::Cmp { col, op, lit } => {
                let c = resolve(col)?;
                let v = type_literal(lit, c.dtype, &c.qualified)?;
                let iv = match op {
                    CmpOp::Eq => Interval::eq(v),
                    CmpOp::Lt => Interval::less_than(v),
                    CmpOp::Le => Interval::at_most(v),
                    CmpOp::Gt => Interval::greater_than(v),
                    CmpOp::Ge => Interval::at_least(v),
                };
                b = b.filter(&c.qualified, iv);
            }
            Pred::Between { col, lo, hi } => {
                let c = resolve(col)?;
                let vlo = type_literal(lo, c.dtype, &c.qualified)?;
                let vhi = type_literal(hi, c.dtype, &c.qualified)?;
                b = b.filter(&c.qualified, Interval::closed(vlo, vhi));
            }
        }
    }

    // -- select list / group by -----------------------------------------
    let mut group_cols = Vec::new();
    for g in &ast.group_by {
        let q = resolve(g)?.qualified;
        b = b.group_by(&q);
        group_cols.push(q);
    }

    match &ast.items {
        // SELECT *: all columns, no aggregation. GROUP BY without an
        // aggregate in the list has no meaning here.
        None => {
            if let Some(g) = ast.group_by.first() {
                return Err(SqlError::new(
                    "GROUP BY requires aggregates in the select list, not `*`",
                    g.span,
                ));
            }
        }
        Some(items) => {
            let has_agg = items.iter().any(|i| matches!(i, Item::Agg { .. }));
            if has_agg {
                for item in items {
                    match item {
                        Item::Agg { func, arg, span } => {
                            let c = resolve(arg)?;
                            if agg_needs_numeric(*func)
                                && !matches!(c.dtype, DataType::Int | DataType::Float)
                            {
                                return Err(SqlError::new(
                                    format!(
                                        "{func:?} needs a numeric column, but {} is {:?}",
                                        c.qualified, c.dtype
                                    ),
                                    *span,
                                ));
                            }
                            b = b.agg(AggExpr::new(*func, c.qualified.as_str()));
                        }
                        Item::Column(col) => {
                            let c = resolve(col)?;
                            if !group_cols.contains(&c.qualified) {
                                return Err(SqlError::new(
                                    format!(
                                        "column {} must appear in GROUP BY when the select \
                                         list has aggregates",
                                        c.qualified
                                    ),
                                    col.span,
                                ));
                            }
                        }
                    }
                }
            } else {
                if let Some(g) = ast.group_by.first() {
                    return Err(SqlError::new(
                        "GROUP BY requires at least one aggregate in the select list",
                        g.span,
                    ));
                }
                let mut proj = Vec::new();
                for item in items {
                    if let Item::Column(col) = item {
                        proj.push(resolve(col)?.qualified);
                    }
                }
                let refs: Vec<&str> = proj.iter().map(String::as_str).collect();
                b = b.project(&refs);
            }
        }
    }

    // Structural validation (join-graph connectivity etc.) lives in the
    // plan layer; anchor its message on the whole statement.
    b.build()
        .map_err(|e| SqlError::new(format!("invalid query: {e}"), ast.span))
}

/// `table` part of a resolved qualified name.
fn owner_table(r: &Resolved) -> Option<&str> {
    r.qualified.split('.').next()
}

/// Resolve a (possibly unqualified) column against the FROM tables.
fn resolve_col(
    c: &ColRef,
    tables: &[&str],
    schema: &dyn SchemaProvider,
) -> Result<Resolved, SqlError> {
    if let Some(t) = &c.table {
        if !tables.iter().any(|x| x == t) {
            return Err(SqlError::new(
                format!("table `{t}` is not in the FROM clause"),
                c.span,
            ));
        }
        let dtype = schema.column_type(t, &c.column).ok_or_else(|| {
            SqlError::new(format!("table `{t}` has no column `{}`", c.column), c.span)
        })?;
        return Ok(Resolved {
            qualified: format!("{t}.{}", c.column),
            dtype,
        });
    }
    // Unqualified: the column must exist in exactly one FROM table.
    let mut hits = Vec::new();
    for t in tables {
        if let Some(dtype) = schema.column_type(t, &c.column) {
            hits.push((*t, dtype));
        }
    }
    match hits.as_slice() {
        [] => Err(SqlError::new(
            format!(
                "unknown column `{}` (searched tables: {})",
                c.column,
                tables.join(", ")
            ),
            c.span,
        )),
        [(t, dtype)] => Ok(Resolved {
            qualified: format!("{t}.{}", c.column),
            dtype: *dtype,
        }),
        many => Err(SqlError::new(
            format!(
                "column `{}` is ambiguous: it exists in {}",
                c.column,
                many.iter()
                    .map(|(t, _)| *t)
                    .collect::<Vec<_>>()
                    .join(" and ")
            ),
            c.span,
        )),
    }
}

/// SUM and AVG only make sense over numbers; COUNT/MIN/MAX take anything
/// with a total order (which is every engine type).
fn agg_needs_numeric(f: hashstash_plan::AggFunc) -> bool {
    matches!(
        f,
        hashstash_plan::AggFunc::Sum | hashstash_plan::AggFunc::Avg
    )
}

/// Coerce a literal to the column's type, or explain why it cannot be.
fn type_literal(lit: &Lit, dtype: DataType, qualified: &str) -> Result<Value, SqlError> {
    let err = |want: &str| {
        SqlError::new(
            format!("{qualified} is {dtype:?}; this literal is not ({want})"),
            lit.span,
        )
    };
    match (dtype, &lit.kind) {
        (DataType::Int, LitKind::Int(v)) => Ok(Value::Int(*v)),
        (DataType::Int, _) => Err(err("write an integer like 42")),
        // Int literals promote to float so `price < 100` works.
        (DataType::Float, LitKind::Int(v)) => Ok(Value::float(*v as f64)),
        (DataType::Float, LitKind::Float(v)) => Ok(Value::float(*v)),
        (DataType::Float, LitKind::Str(_)) => Err(err("write a number like 0.07")),
        (DataType::Str, LitKind::Str(s)) => Ok(Value::Str(s.as_str().into())),
        (DataType::Str, _) => Err(err("write a string like 'BUILDING'")),
        (DataType::Date, LitKind::Str(s)) => match parse_date(s) {
            Some(d) => Ok(Value::Date(d)),
            None => Err(err("write a date like '1995-03-15'")),
        },
        (DataType::Date, _) => Err(err("write a date like '1995-03-15'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use std::collections::HashMap;

    pub(crate) struct TestSchema(pub HashMap<&'static str, Vec<(&'static str, DataType)>>);

    impl SchemaProvider for TestSchema {
        fn has_table(&self, table: &str) -> bool {
            self.0.contains_key(table)
        }
        fn column_type(&self, table: &str, column: &str) -> Option<DataType> {
            self.0
                .get(table)?
                .iter()
                .find(|(c, _)| *c == column)
                .map(|(_, t)| *t)
        }
    }

    fn schema() -> TestSchema {
        let mut m = HashMap::new();
        m.insert(
            "customer",
            vec![("c_custkey", DataType::Int), ("c_age", DataType::Int)],
        );
        m.insert(
            "orders",
            vec![
                ("o_custkey", DataType::Int),
                ("o_orderdate", DataType::Date),
                ("o_comment", DataType::Str),
            ],
        );
        m.insert(
            "lineitem",
            vec![
                ("l_orderkey", DataType::Int),
                ("l_quantity", DataType::Float),
            ],
        );
        TestSchema(m)
    }

    fn lower_sql(sql: &str) -> Result<QuerySpec, SqlError> {
        lower(&parse(sql)?, 7, &schema())
    }

    #[test]
    fn matches_hand_built_query() {
        let spec = lower_sql(
            "SELECT c_age, SUM(l_quantity) FROM customer \
             JOIN orders ON customer.c_custkey = orders.o_custkey \
             JOIN lineitem ON orders.o_custkey = lineitem.l_orderkey \
             WHERE o_orderdate >= '1995-01-01' GROUP BY c_age",
        )
        .unwrap();
        let hand = QueryBuilder::new(7)
            .join(
                "customer",
                "customer.c_custkey",
                "orders",
                "orders.o_custkey",
            )
            .join(
                "orders",
                "orders.o_custkey",
                "lineitem",
                "lineitem.l_orderkey",
            )
            .filter(
                "orders.o_orderdate",
                Interval::at_least(Value::Date(parse_date("1995-01-01").unwrap())),
            )
            .group_by("customer.c_age")
            .agg(AggExpr::new(
                hashstash_plan::AggFunc::Sum,
                "lineitem.l_quantity",
            ))
            .build()
            .unwrap();
        assert_eq!(spec, hand);
    }

    #[test]
    fn int_promotes_to_float_and_between_is_closed() {
        let spec = lower_sql("SELECT * FROM lineitem WHERE l_quantity BETWEEN 5 AND 10").unwrap();
        let hand = QueryBuilder::new(7)
            .table("lineitem")
            .filter(
                "lineitem.l_quantity",
                Interval::closed(Value::float(5.0), Value::float(10.0)),
            )
            .build()
            .unwrap();
        assert_eq!(spec, hand);
    }

    #[test]
    fn analysis_errors_carry_spans() {
        for (sql, needle) in [
            ("SELECT * FROM nope", "unknown table"),
            ("SELECT * FROM customer, customer", "appears twice"),
            ("SELECT * FROM customer WHERE zzz = 1", "unknown column"),
            (
                "SELECT * FROM customer, orders WHERE customer.c_custkey = orders.o_custkey AND o_custkey = 'x'",
                "write an integer",
            ),
            (
                "SELECT * FROM customer WHERE o_orderdate > '1995-01-01'",
                "unknown column",
            ),
            ("SELECT * FROM orders WHERE o_orderdate = 'soon'", "like '1995-03-15'"),
            ("SELECT SUM(o_comment) FROM orders", "numeric column"),
            ("SELECT c_age FROM customer GROUP BY c_age", "at least one aggregate"),
            (
                "SELECT c_custkey, SUM(c_age) FROM customer GROUP BY c_age",
                "must appear in GROUP BY",
            ),
            (
                "SELECT * FROM customer JOIN orders ON customer.c_custkey = customer.c_age",
                "two different tables",
            ),
            (
                "SELECT * FROM customer JOIN orders ON customer.c_custkey = orders.o_orderdate",
                "types differ",
            ),
            ("SELECT * FROM customer, orders", "invalid query"),
        ] {
            let err = lower_sql(sql).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{sql}: message {:?} missing {needle:?}",
                err.message
            );
        }
    }

    #[test]
    fn ambiguous_column_is_rejected() {
        let mut s = schema();
        s.0.insert("extra", vec![("c_age", DataType::Int)]);
        let err = lower(
            &parse("SELECT * FROM customer JOIN extra ON customer.c_custkey = extra.c_age WHERE c_age = 1").unwrap(),
            1,
            &s,
        )
        .unwrap_err();
        assert!(err.message.contains("ambiguous"));
    }
}
