//! Span-carrying parse and analysis errors.
//!
//! Every error produced by this crate points at the byte range of the
//! offending token (or clause) in the original SQL text, so a serving
//! front end can render a caret snippet instead of a bare message. Spans
//! are byte offsets into the input; [`SqlError::render`] is careful to
//! slice only on `char` boundaries, so rendering never panics even for
//! adversarial multi-byte inputs.

use std::fmt;

/// A half-open byte range `[start, end)` into the SQL source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first byte of the offending region.
    pub start: usize,
    /// Byte offset one past the last byte of the offending region.
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn cover(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// A parse or analysis error with the source region it refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// The byte range of the offending token or clause.
    pub span: Span,
}

impl SqlError {
    /// Build an error pointing at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        SqlError {
            message: message.into(),
            span,
        }
    }

    /// Render a two-line caret snippet against the original source:
    ///
    /// ```text
    /// error: unknown table `ordrs`
    ///   SELECT * FROM ordrs
    ///                 ^^^^^
    /// ```
    ///
    /// Robust against spans that fall outside `src` or inside multi-byte
    /// characters (possible only through misuse, but rendering must not
    /// be the thing that panics in an error path).
    pub fn render(&self, src: &str) -> String {
        let mut out = format!("error: {}\n", self.message);
        // Clamp to char boundaries by walking backwards until get() works.
        let clamp = |mut i: usize| {
            i = i.min(src.len());
            while i > 0 && !src.is_char_boundary(i) {
                i -= 1;
            }
            i
        };
        let start = clamp(self.span.start);
        let end = clamp(self.span.end.max(self.span.start)).max(start);
        // Single-line sources are the norm; for multi-line input point at
        // the line containing the span start.
        let line_start = src
            .get(..start)
            .and_then(|s| s.rfind('\n').map(|i| i + 1))
            .unwrap_or(0);
        let line_end = src
            .get(start..)
            .and_then(|s| s.find('\n').map(|i| start + i))
            .unwrap_or(src.len());
        let line = src.get(line_start..line_end).unwrap_or("");
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
        // Caret columns are counted in chars of the prefix, not bytes.
        let prefix_chars = src
            .get(line_start..start)
            .map(|s| s.chars().count())
            .unwrap_or(0);
        let span_chars = src
            .get(start..end.min(line_end))
            .map(|s| s.chars().count())
            .unwrap_or(0)
            .max(1);
        out.push_str("  ");
        for _ in 0..prefix_chars {
            out.push(' ');
        }
        for _ in 0..span_chars {
            out.push('^');
        }
        out
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (at bytes {}..{})",
            self.message, self.span.start, self.span.end
        )
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_span() {
        let src = "SELECT * FROM ordrs";
        let err = SqlError::new("unknown table `ordrs`", Span::new(14, 19));
        let r = err.render(src);
        assert!(r.contains("SELECT * FROM ordrs"));
        assert!(r.ends_with("              ^^^^^"));
    }

    #[test]
    fn render_survives_bogus_spans_and_multibyte() {
        let src = "SELECT 'héllo' FROM t";
        for (a, b) in [(0, 1000), (9, 10), (1000, 2000), (5, 3)] {
            let _ = SqlError::new("x", Span::new(a, b)).render(src);
        }
    }
}
