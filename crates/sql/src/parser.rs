//! Recursive-descent parser for the SQL subset the engine executes.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query     := SELECT select_list
//!              FROM table ( ',' table | JOIN table ON colref '=' colref )*
//!              ( WHERE pred ( AND pred )* )?
//!              ( GROUP BY colref ( ',' colref )* )?
//!              ';'? EOF
//! select_list := '*' | item ( ',' item )*
//! item      := colref | func '(' colref ')'      func ∈ SUM COUNT MIN MAX AVG
//! colref    := ident ( '.' ident )?
//! pred      := colref cmp literal
//!            | literal cmp colref
//!            | colref BETWEEN literal AND literal
//!            | colref '=' colref                  (equi-join edge)
//! cmp       := '=' | '<' | '<=' | '>' | '>='
//! literal   := '-'? INT | '-'? FLOAT | STRING
//! ```
//!
//! This is exactly the shape [`hashstash_plan::QuerySpec`] can express:
//! conjunctive range predicates, equi-joins, grouped aggregates and
//! column projections. Everything else (disequality, OR, subqueries,
//! aliases, ORDER BY, …) is rejected here with a span so the caller can
//! show *where*, and lowering never has to guess.
//!
//! The parser never panics: token access is bounds-checked, recursion is
//! replaced by iteration everywhere the input could control the depth,
//! and all failures flow out as [`SqlError`].

use hashstash_plan::AggFunc;

use crate::error::{Span, SqlError};
use crate::lexer::{lex, Tok, Token};

/// A possibly-qualified column reference as written (`l_quantity` or
/// `lineitem.l_quantity`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColRef {
    /// Qualifier, if written.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
    /// Where the whole reference appeared.
    pub span: Span,
}

/// A literal operand in a predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct Lit {
    pub kind: LitKind,
    pub span: Span,
}

/// The three literal shapes the grammar admits.
#[derive(Debug, Clone, PartialEq)]
pub enum LitKind {
    Int(i64),
    Float(f64),
    /// Also how dates are written (`'1995-03-15'`); lowering decides
    /// based on the column type.
    Str(String),
}

/// Comparison operators on (column, literal) pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// The operator with sides swapped: `lit op col` ≡ `col mirror(op) lit`.
    pub fn mirror(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// One conjunct of the WHERE clause (or an ON clause).
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// `col op literal` (already mirrored if written literal-first).
    Cmp { col: ColRef, op: CmpOp, lit: Lit },
    /// `col BETWEEN lo AND hi` (inclusive both ends, per SQL).
    Between { col: ColRef, lo: Lit, hi: Lit },
    /// `col = col`: an equi-join edge.
    JoinEq {
        left: ColRef,
        right: ColRef,
        span: Span,
    },
}

/// One SELECT-list item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// Plain column (must be grouped if aggregates are present).
    Column(ColRef),
    /// `FUNC(col)` aggregate.
    Agg {
        func: AggFunc,
        arg: ColRef,
        span: Span,
    },
}

/// The parsed statement, before name resolution and typing.
#[derive(Debug, Clone, PartialEq)]
pub struct Ast {
    /// `None` means `SELECT *`.
    pub items: Option<Vec<Item>>,
    /// FROM tables in written order, with spans.
    pub tables: Vec<(String, Span)>,
    /// WHERE / ON conjuncts in written order.
    pub preds: Vec<Pred>,
    /// GROUP BY columns in written order.
    pub group_by: Vec<ColRef>,
    /// Span of the whole statement (for errors with no better anchor).
    pub span: Span,
}

/// Parse `src` into an [`Ast`].
pub fn parse(src: &str) -> Result<Ast, SqlError> {
    let tokens = lex(src)?;
    Parser { tokens, pos: 0 }.query(src.len())
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Current token (the lexer guarantees a trailing Eof, but degrade
    /// gracefully anyway — this module must not be able to panic).
    fn peek(&self) -> &Token {
        const EOF: &Token = &Token {
            tok: Tok::Eof,
            span: Span { start: 0, end: 0 },
        };
        self.tokens.get(self.pos).unwrap_or(EOF)
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        self.pos = self.pos.saturating_add(1).min(self.tokens.len());
        t
    }

    /// Is the current token the given keyword (case-insensitive)?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().tok, Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<Token, SqlError> {
        if self.at_kw(kw) {
            Ok(self.bump())
        } else {
            let t = self.peek();
            Err(SqlError::new(
                format!("expected `{kw}`, found {}", t.tok.describe()),
                t.span,
            ))
        }
    }

    fn require(&mut self, want: &Tok, what: &str) -> Result<Token, SqlError> {
        if &self.peek().tok == want {
            Ok(self.bump())
        } else {
            let t = self.peek();
            Err(SqlError::new(
                format!("expected {what}, found {}", t.tok.describe()),
                t.span,
            ))
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), SqlError> {
        let t = self.peek().clone();
        match t.tok {
            Tok::Ident(s) => {
                self.bump();
                Ok((s, t.span))
            }
            _ => Err(SqlError::new(
                format!("expected {what}, found {}", t.tok.describe()),
                t.span,
            )),
        }
    }

    /// Reserved words that cannot be a table or column name; without this
    /// `SELECT * FROM t WHERE` would parse WHERE as a table name and the
    /// error would point at the wrong place.
    const KEYWORDS: &'static [&'static str] = &[
        "select", "from", "where", "and", "group", "by", "join", "on", "between",
    ];

    fn name(&mut self, what: &str) -> Result<(String, Span), SqlError> {
        let (s, span) = self.ident(what)?;
        if Self::KEYWORDS.iter().any(|k| s.eq_ignore_ascii_case(k)) {
            return Err(SqlError::new(
                format!("expected {what}, found reserved word `{s}`"),
                span,
            ));
        }
        Ok((s, span))
    }

    fn colref(&mut self) -> Result<ColRef, SqlError> {
        let (first, span1) = self.name("a column name")?;
        if self.peek().tok == Tok::Dot {
            self.bump();
            let (col, span2) = self.name("a column name after `.`")?;
            Ok(ColRef {
                table: Some(first),
                column: col,
                span: span1.cover(span2),
            })
        } else {
            Ok(ColRef {
                table: None,
                column: first,
                span: span1,
            })
        }
    }

    fn query(mut self, src_len: usize) -> Result<Ast, SqlError> {
        let start = self.expect_kw("SELECT")?.span;
        let items = self.select_list()?;
        self.expect_kw("FROM")?;

        let mut tables = Vec::new();
        let mut preds = Vec::new();
        let (t, s) = self.name("a table name")?;
        tables.push((t, s));
        loop {
            if self.peek().tok == Tok::Comma {
                self.bump();
                let (t, s) = self.name("a table name")?;
                tables.push((t, s));
            } else if self.at_kw("JOIN") {
                self.bump();
                let (t, s) = self.name("a table name after JOIN")?;
                tables.push((t, s));
                self.expect_kw("ON")?;
                let left = self.colref()?;
                self.require(&Tok::Eq, "`=` in join condition")?;
                let right = self.colref()?;
                let span = left.span.cover(right.span);
                preds.push(Pred::JoinEq { left, right, span });
            } else {
                break;
            }
        }

        if self.eat_kw("WHERE") {
            preds.push(self.pred()?);
            while self.eat_kw("AND") {
                preds.push(self.pred()?);
            }
        }

        let mut group_by = Vec::new();
        if self.at_kw("GROUP") {
            self.bump();
            self.expect_kw("BY")?;
            group_by.push(self.colref()?);
            while self.peek().tok == Tok::Comma {
                self.bump();
                group_by.push(self.colref()?);
            }
        }

        if self.peek().tok == Tok::Semi {
            self.bump();
        }
        let t = self.peek().clone();
        if t.tok != Tok::Eof {
            return Err(SqlError::new(
                format!("unexpected {} after end of query", t.tok.describe()),
                t.span,
            ));
        }
        Ok(Ast {
            items,
            tables,
            preds,
            group_by,
            span: start.cover(Span::new(src_len, src_len)),
        })
    }

    fn select_list(&mut self) -> Result<Option<Vec<Item>>, SqlError> {
        if self.peek().tok == Tok::Star {
            self.bump();
            return Ok(None);
        }
        let mut items = vec![self.item()?];
        while self.peek().tok == Tok::Comma {
            self.bump();
            items.push(self.item()?);
        }
        Ok(Some(items))
    }

    fn item(&mut self) -> Result<Item, SqlError> {
        let (first, span1) = self.name("a column or aggregate")?;
        if self.peek().tok == Tok::LParen {
            let func = match first.to_ascii_lowercase().as_str() {
                "sum" => AggFunc::Sum,
                "count" => AggFunc::Count,
                "min" => AggFunc::Min,
                "max" => AggFunc::Max,
                "avg" => AggFunc::Avg,
                _ => {
                    return Err(SqlError::new(
                        format!(
                            "unknown aggregate `{first}` (supported: SUM, COUNT, MIN, MAX, AVG)"
                        ),
                        span1,
                    ));
                }
            };
            self.bump();
            if self.peek().tok == Tok::Star {
                let star = self.bump();
                return Err(SqlError::new(
                    "COUNT(*) is not supported; count a concrete column instead, \
                     e.g. COUNT(l_orderkey)",
                    span1.cover(star.span),
                ));
            }
            let arg = self.colref()?;
            let close = self.require(&Tok::RParen, "`)` after aggregate argument")?;
            Ok(Item::Agg {
                func,
                arg,
                span: span1.cover(close.span),
            })
        } else if self.peek().tok == Tok::Dot {
            self.bump();
            let (col, span2) = self.name("a column name after `.`")?;
            Ok(Item::Column(ColRef {
                table: Some(first),
                column: col,
                span: span1.cover(span2),
            }))
        } else {
            Ok(Item::Column(ColRef {
                table: None,
                column: first,
                span: span1,
            }))
        }
    }

    fn literal(&mut self) -> Result<Lit, SqlError> {
        let t = self.peek().clone();
        match t.tok {
            Tok::Minus => {
                self.bump();
                let n = self.peek().clone();
                match n.tok {
                    Tok::Int(v) => {
                        self.bump();
                        Ok(Lit {
                            kind: LitKind::Int(v.wrapping_neg()),
                            span: t.span.cover(n.span),
                        })
                    }
                    Tok::Float(v) => {
                        self.bump();
                        Ok(Lit {
                            kind: LitKind::Float(-v),
                            span: t.span.cover(n.span),
                        })
                    }
                    _ => Err(SqlError::new(
                        format!("expected a number after `-`, found {}", n.tok.describe()),
                        n.span,
                    )),
                }
            }
            Tok::Int(v) => {
                self.bump();
                Ok(Lit {
                    kind: LitKind::Int(v),
                    span: t.span,
                })
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Lit {
                    kind: LitKind::Float(v),
                    span: t.span,
                })
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Lit {
                    kind: LitKind::Str(s),
                    span: t.span,
                })
            }
            _ => Err(SqlError::new(
                format!("expected a literal, found {}", t.tok.describe()),
                t.span,
            )),
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp, SqlError> {
        let t = self.peek().clone();
        let op = match t.tok {
            Tok::Eq => CmpOp::Eq,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            Tok::Ne => {
                return Err(SqlError::new(
                    "`<>` is not supported: predicates must describe a contiguous range \
                     (the reuse cache subsumption logic works on intervals)",
                    t.span,
                ));
            }
            _ => {
                return Err(SqlError::new(
                    format!(
                        "expected a comparison operator or BETWEEN, found {}",
                        t.tok.describe()
                    ),
                    t.span,
                ));
            }
        };
        self.bump();
        Ok(op)
    }

    fn pred(&mut self) -> Result<Pred, SqlError> {
        // literal-first form: `1995 <= o_year`.
        if matches!(
            self.peek().tok,
            Tok::Int(_) | Tok::Float(_) | Tok::Str(_) | Tok::Minus
        ) {
            let lit = self.literal()?;
            let op = self.cmp_op()?;
            let col = self.colref()?;
            return Ok(Pred::Cmp {
                col,
                op: op.mirror(),
                lit,
            });
        }
        let col = self.colref()?;
        if self.at_kw("BETWEEN") {
            self.bump();
            let lo = self.literal()?;
            self.expect_kw("AND")?;
            let hi = self.literal()?;
            return Ok(Pred::Between { col, lo, hi });
        }
        let op = self.cmp_op()?;
        // Column on the right-hand side makes this a join edge; only `=`
        // qualifies (range joins are outside the engine's plan space).
        if matches!(self.peek().tok, Tok::Ident(_)) {
            let right = self.colref()?;
            if op != CmpOp::Eq {
                let span = col.span.cover(right.span);
                return Err(SqlError::new(
                    "only equi-joins are supported between two columns",
                    span,
                ));
            }
            let span = col.span.cover(right.span);
            return Ok(Pred::JoinEq {
                left: col,
                right,
                span,
            });
        }
        let lit = self.literal()?;
        Ok(Pred::Cmp { col, op, lit })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_join_agg_query() {
        let ast = parse(
            "SELECT customer.c_age, SUM(l_quantity) \
             FROM customer JOIN orders ON customer.c_custkey = orders.o_custkey \
             WHERE orders.o_orderdate >= '1995-01-01' \
             GROUP BY customer.c_age;",
        )
        .unwrap();
        assert_eq!(ast.tables.len(), 2);
        assert_eq!(ast.preds.len(), 2); // ON edge + WHERE conjunct
        assert_eq!(ast.group_by.len(), 1);
        let items = ast.items.unwrap();
        assert!(matches!(
            items[1],
            Item::Agg {
                func: AggFunc::Sum,
                ..
            }
        ));
    }

    #[test]
    fn star_and_comma_joins() {
        let ast = parse("select * from a, b where a.x = b.y and a.z < 5").unwrap();
        assert!(ast.items.is_none());
        assert_eq!(ast.tables.len(), 2);
        assert!(matches!(ast.preds[0], Pred::JoinEq { .. }));
        assert!(matches!(ast.preds[1], Pred::Cmp { op: CmpOp::Lt, .. }));
    }

    #[test]
    fn between_and_mirrored_literal() {
        let ast = parse("SELECT * FROM t WHERE t.a BETWEEN 1 AND 10 AND 3 <= t.b").unwrap();
        assert!(matches!(ast.preds[0], Pred::Between { .. }));
        match &ast.preds[1] {
            Pred::Cmp { op, .. } => assert_eq!(*op, CmpOp::Ge),
            other => panic!("expected Cmp, got {other:?}"),
        }
    }

    #[test]
    fn rejects_with_spans() {
        for (sql, needle) in [
            ("SELECT", "expected"),
            ("SELECT * FROM", "table name"),
            ("SELECT * FROM t WHERE a <> 1", "not supported"),
            ("SELECT COUNT(*) FROM t", "COUNT(*)"),
            ("SELECT MEDIAN(x) FROM t", "unknown aggregate"),
            ("SELECT * FROM t WHERE a < b", "equi-join"),
            ("SELECT * FROM t extra", "after end of query"),
            ("SELECT * FROM where", "reserved word"),
        ] {
            let err = parse(sql).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{sql}: message {:?} missing {needle:?}",
                err.message
            );
            assert!(err.span.end <= sql.len() && err.span.start <= err.span.end);
        }
    }
}
