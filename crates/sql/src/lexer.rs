//! The tokenizer: SQL text to a span-carrying token stream.
//!
//! Hand-written over `char_indices` so every token knows its exact byte
//! range and no input — including byte soup — can make it panic: there is
//! no slicing by computed offsets, only iterator-driven accumulation.
//! Keywords are *not* distinguished here; identifiers keep their original
//! spelling and the parser matches them case-insensitively, which keeps
//! the token type small and lets error messages echo the user's casing.

use crate::error::{Span, SqlError};

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Bare identifier or keyword (`SELECT`, `lineitem`, `l_quantity`).
    Ident(String),
    /// Integer literal. Overflow is a lex error, not a wrap.
    Int(i64),
    /// Float literal (`1.5`, `0.07`).
    Float(f64),
    /// Single-quoted string literal, quotes stripped, `''` unescaped.
    Str(String),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<>` or `!=` — lexed so the parser can reject it with a good
    /// message (disequality is not expressible as a conjunctive interval).
    Ne,
    /// `-` (only meaningful as a literal sign in this grammar).
    Minus,
    /// End of input (carries the one-past-end span).
    Eof,
}

impl Tok {
    /// Short description used in "expected X, found Y" messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Int(v) => format!("integer `{v}`"),
            Tok::Float(v) => format!("float `{v}`"),
            Tok::Str(s) => format!("string '{s}'"),
            Tok::Comma => "`,`".into(),
            Tok::Dot => "`.`".into(),
            Tok::Star => "`*`".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::Semi => "`;`".into(),
            Tok::Eq => "`=`".into(),
            Tok::Lt => "`<`".into(),
            Tok::Le => "`<=`".into(),
            Tok::Gt => "`>`".into(),
            Tok::Ge => "`>=`".into(),
            Tok::Ne => "`<>`".into(),
            Tok::Minus => "`-`".into(),
            Tok::Eof => "end of input".into(),
        }
    }
}

/// A token plus where it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub span: Span,
}

/// Tokenize `src` completely. Returns the token list terminated by
/// [`Tok::Eof`], or the first lexical error.
pub fn lex(src: &str) -> Result<Vec<Token>, SqlError> {
    let mut out = Vec::new();
    let mut it = src.char_indices().peekable();
    while let Some(&(at, c)) = it.peek() {
        if c.is_whitespace() {
            it.next();
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let mut ident = String::new();
            let mut end = at;
            while let Some(&(j, d)) = it.peek() {
                if d.is_ascii_alphanumeric() || d == '_' {
                    ident.push(d);
                    end = j + d.len_utf8();
                    it.next();
                } else {
                    break;
                }
            }
            out.push(Token {
                tok: Tok::Ident(ident),
                span: Span::new(at, end),
            });
            continue;
        }
        if c.is_ascii_digit() {
            let (tok, span) = lex_number(&mut it, at)?;
            out.push(Token { tok, span });
            continue;
        }
        if c == '\'' {
            it.next();
            let mut s = String::new();
            let mut end = None;
            while let Some((j, d)) = it.next() {
                if d == '\'' {
                    // '' inside a string is an escaped quote.
                    if let Some(&(_, '\'')) = it.peek() {
                        s.push('\'');
                        it.next();
                        continue;
                    }
                    end = Some(j + 1);
                    break;
                }
                s.push(d);
            }
            let end = end.ok_or_else(|| {
                SqlError::new("unterminated string literal", Span::new(at, src.len()))
            })?;
            out.push(Token {
                tok: Tok::Str(s),
                span: Span::new(at, end),
            });
            continue;
        }
        // Operators and punctuation.
        it.next();
        let two = |it: &mut std::iter::Peekable<std::str::CharIndices>, want: char| {
            if let Some(&(_, d)) = it.peek() {
                if d == want {
                    it.next();
                    return true;
                }
            }
            false
        };
        let (tok, len) = match c {
            ',' => (Tok::Comma, 1),
            '.' => (Tok::Dot, 1),
            '*' => (Tok::Star, 1),
            '(' => (Tok::LParen, 1),
            ')' => (Tok::RParen, 1),
            ';' => (Tok::Semi, 1),
            '=' => (Tok::Eq, 1),
            '-' => (Tok::Minus, 1),
            '<' => {
                if two(&mut it, '=') {
                    (Tok::Le, 2)
                } else if two(&mut it, '>') {
                    (Tok::Ne, 2)
                } else {
                    (Tok::Lt, 1)
                }
            }
            '>' => {
                if two(&mut it, '=') {
                    (Tok::Ge, 2)
                } else {
                    (Tok::Gt, 1)
                }
            }
            '!' => {
                if two(&mut it, '=') {
                    (Tok::Ne, 2)
                } else {
                    return Err(SqlError::new(
                        "unexpected character `!` (did you mean `!=`?)",
                        Span::new(at, at + 1),
                    ));
                }
            }
            other => {
                return Err(SqlError::new(
                    format!("unexpected character `{other}`"),
                    Span::new(at, at + other.len_utf8()),
                ));
            }
        };
        out.push(Token {
            tok,
            span: Span::new(at, at + len),
        });
    }
    out.push(Token {
        tok: Tok::Eof,
        span: Span::new(src.len(), src.len()),
    });
    Ok(out)
}

/// Lex a number starting at byte `at`. The leading digit is still in the
/// iterator. Accepts `123` and `123.456`; a trailing bare `.` (as in
/// `1.`) is an error so `t.c` style qualified refs never collide with
/// float syntax.
fn lex_number(
    it: &mut std::iter::Peekable<std::str::CharIndices>,
    at: usize,
) -> Result<(Tok, Span), SqlError> {
    let mut text = String::new();
    let mut end = at;
    while let Some(&(j, d)) = it.peek() {
        if d.is_ascii_digit() {
            text.push(d);
            end = j + 1;
            it.next();
        } else {
            break;
        }
    }
    let mut is_float = false;
    if let Some(&(dot_at, '.')) = it.peek() {
        // Only consume the dot if a digit follows; `123.` alone is an
        // error and `a.b` never reaches here (identifiers handle dots).
        let mut clone = it.clone();
        clone.next();
        match clone.peek() {
            Some(&(_, d)) if d.is_ascii_digit() => {
                is_float = true;
                text.push('.');
                it.next();
                while let Some(&(j, d)) = it.peek() {
                    if d.is_ascii_digit() {
                        text.push(d);
                        end = j + 1;
                        it.next();
                    } else {
                        break;
                    }
                }
            }
            _ => {
                return Err(SqlError::new(
                    "malformed number: digits required after `.`",
                    Span::new(at, dot_at + 1),
                ));
            }
        }
    }
    let span = Span::new(at, end);
    if is_float {
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok((Tok::Float(v), span)),
            _ => Err(SqlError::new(
                format!("float literal `{text}` out of range"),
                span,
            )),
        }
    } else {
        match text.parse::<i64>() {
            Ok(v) => Ok((Tok::Int(v), span)),
            Err(_) => Err(SqlError::new(
                format!("integer literal `{text}` overflows i64"),
                span,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_stream() {
        assert_eq!(
            toks("SELECT a.b, 1 <= 2.5 '&x'"),
            vec![
                Tok::Ident("SELECT".into()),
                Tok::Ident("a".into()),
                Tok::Dot,
                Tok::Ident("b".into()),
                Tok::Comma,
                Tok::Int(1),
                Tok::Le,
                Tok::Float(2.5),
                Tok::Str("&x".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn spans_are_byte_accurate() {
        let ts = lex("ab  <=").unwrap();
        assert_eq!(ts[0].span, Span::new(0, 2));
        assert_eq!(ts[1].span, Span::new(4, 6));
        assert_eq!(ts[2].span, Span::new(6, 6));
    }

    #[test]
    fn escaped_quote_and_unterminated() {
        assert_eq!(toks("'it''s'")[0], Tok::Str("it's".into()));
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn numeric_edges() {
        assert!(lex("9223372036854775808").is_err()); // i64::MAX + 1
        assert!(lex("12.").is_err());
        assert_eq!(toks("12.5")[0], Tok::Float(12.5));
    }

    #[test]
    fn multibyte_input_is_an_error_not_a_panic() {
        assert!(lex("SELECT \u{1F980} FROM t").is_err());
    }
}
