//! SQL front end for HashStash: a hand-written lexer, recursive-descent
//! parser and lowering pass that turn the SQL subset the engine executes —
//! single-table range scans, equi-joins, grouped aggregates, projections —
//! into the same [`QuerySpec`] structure hand-built queries use. Nothing
//! downstream (fingerprints, reuse-case classification, the cost model)
//! can tell a parsed query from a constructed one.
//!
//! Design points:
//!
//! * **Span-carrying errors.** Every failure — lexical, syntactic, or
//!   semantic (unknown table, ambiguous column, type mismatch) — is a
//!   [`SqlError`] holding the byte range of the offending token, and
//!   [`SqlError::render`] draws a caret snippet for the serving front end.
//! * **Never panics.** This crate is on the tidy `no-panic-paths` list:
//!   non-test code contains no `unwrap`/`expect`/`panic!`, the lexer walks
//!   `char_indices` (no byte slicing at computed offsets), and arbitrary
//!   byte soup produces `Err`, never a crash — a property the proptest
//!   battery in `tests/` hammers on.
//! * **Thin schema coupling.** Name resolution goes through the two-method
//!   [`SchemaProvider`] trait, so the crate depends only on the type and
//!   plan layers; the server adapts the storage catalog to it.
//!
//! ```
//! use hashstash_sql::{parse_query, SchemaProvider};
//! use hashstash_types::DataType;
//!
//! struct One;
//! impl SchemaProvider for One {
//!     fn has_table(&self, t: &str) -> bool { t == "lineitem" }
//!     fn column_type(&self, t: &str, c: &str) -> Option<DataType> {
//!         (t == "lineitem" && c == "l_quantity").then_some(DataType::Float)
//!     }
//! }
//!
//! let spec = parse_query("SELECT * FROM lineitem WHERE l_quantity < 24", 1, &One).unwrap();
//! assert_eq!(spec.id.0, 1);
//! ```

pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use error::{Span, SqlError};
pub use lower::{lower, SchemaProvider};
pub use parser::{parse, Ast};

use hashstash_plan::QuerySpec;

/// Parse and lower `sql` into a validated [`QuerySpec`] with the given
/// query id. This is the one-call entry point; use [`parse`] + [`lower`]
/// separately to inspect the AST.
pub fn parse_query(sql: &str, id: u32, schema: &dyn SchemaProvider) -> Result<QuerySpec, SqlError> {
    lower(&parse(sql)?, id, schema)
}
