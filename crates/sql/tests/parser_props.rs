//! Property battery for the SQL front end.
//!
//! Three claims, hammered with generated inputs:
//!
//! 1. **Round-trip**: a query assembled from grammar pieces parses and
//!    lowers to *exactly* the `QuerySpec` the fluent builder produces for
//!    the same structure — the SQL path is indistinguishable downstream.
//! 2. **Never panics**: arbitrary byte soup (and nastier near-SQL token
//!    soup) may be rejected, but must never crash the parser. The crate
//!    is on the tidy no-panic list; this is the runtime check of the same
//!    contract.
//! 3. **Span sanity**: every error points inside the input.

use proptest::prelude::*;

use hashstash_plan::{AggExpr, AggFunc, Interval, QueryBuilder};
use hashstash_sql::{parse, parse_query, SchemaProvider};
use hashstash_types::{DataType, Value};

/// The fixed test universe: three tables with distinct column names (so
/// unqualified references resolve unambiguously).
struct Universe;

const COLUMNS: &[(&str, &str, DataType)] = &[
    ("customer", "c_custkey", DataType::Int),
    ("customer", "c_age", DataType::Int),
    ("orders", "o_custkey", DataType::Int),
    ("orders", "o_orderkey", DataType::Int),
    ("orders", "o_orderdate", DataType::Date),
    ("orders", "o_comment", DataType::Str),
    ("lineitem", "l_orderkey", DataType::Int),
    ("lineitem", "l_quantity", DataType::Float),
];

impl SchemaProvider for Universe {
    fn has_table(&self, table: &str) -> bool {
        COLUMNS.iter().any(|(t, _, _)| *t == table)
    }
    fn column_type(&self, table: &str, column: &str) -> Option<DataType> {
        COLUMNS
            .iter()
            .find(|(t, c, _)| *t == table && *c == column)
            .map(|(_, _, d)| *d)
    }
}

/// One generated comparison predicate: SQL text plus the filter the
/// builder applies for it. Only Int/Float/Date columns (strings only get
/// equality, which the generator covers through Int columns already).
#[derive(Clone, Debug)]
struct GenPred {
    sql: String,
    attr: String,
    interval: Interval,
}

fn int_pred(table: &'static str, col: &'static str) -> impl Strategy<Value = GenPred> {
    (0usize..6, -999i64..999, any::<bool>()).prop_map(move |(op, a, flip)| {
        let attr = format!("{table}.{col}");
        let v = Value::Int(a);
        let (sql, interval) = match op {
            0 => (format!("{col} = {a}"), Interval::eq(v)),
            1 => (format!("{col} < {a}"), Interval::less_than(v)),
            2 => (format!("{col} <= {a}"), Interval::at_most(v)),
            3 => (format!("{col} > {a}"), Interval::greater_than(v)),
            4 => (format!("{col} >= {a}"), Interval::at_least(v)),
            _ => {
                let b = a + 10;
                (
                    format!("{col} BETWEEN {a} AND {b}"),
                    Interval::closed(v, Value::Int(b)),
                )
            }
        };
        // Half the cases write the literal first; the parser mirrors the
        // operator, the builder side never changes.
        let sql = if flip && op < 5 {
            let mirrored = match op {
                0 => format!("{a} = {col}"),
                1 => format!("{a} > {col}"),
                2 => format!("{a} >= {col}"),
                3 => format!("{a} < {col}"),
                _ => format!("{a} <= {col}"),
            };
            mirrored
        } else {
            sql
        };
        GenPred {
            sql,
            attr,
            interval,
        }
    })
}

fn date_pred() -> impl Strategy<Value = GenPred> {
    (1i64..28, 1i64..12, any::<bool>()).prop_map(|(day, month, ge)| {
        let s = format!("1995-{month:02}-{day:02}");
        let d = hashstash_types::date::parse_date(&s).expect("generated date is valid");
        let (op, interval) = if ge {
            (">=", Interval::at_least(Value::Date(d)))
        } else {
            ("<", Interval::less_than(Value::Date(d)))
        };
        GenPred {
            sql: format!("o_orderdate {op} '{s}'"),
            attr: "orders.o_orderdate".to_string(),
            interval,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    // Single-table queries: parsed SQL lowers to the builder's spec.
    #[test]
    fn roundtrip_single_table(pred in int_pred("customer", "c_age"), star in any::<bool>()) {
        let sql = if star {
            format!("SELECT * FROM customer WHERE {}", pred.sql)
        } else {
            format!("SELECT c_custkey, c_age FROM customer WHERE {}", pred.sql)
        };
        let parsed = parse_query(&sql, 9, &Universe).expect(&sql);

        let mut b = QueryBuilder::new(9)
            .table("customer")
            .filter(&pred.attr, pred.interval.clone());
        if !star {
            b = b.project(&["customer.c_custkey", "customer.c_age"]);
        }
        prop_assert_eq!(parsed, b.build().unwrap());
    }

    // Join + aggregate queries, with 1–2 range predicates stacked on the
    // same builder the workload generator uses.
    #[test]
    fn roundtrip_join_aggregate(
        dpred in date_pred(),
        ipred in int_pred("customer", "c_age"),
        both in any::<bool>(),
        func in prop_oneof![Just(AggFunc::Sum), Just(AggFunc::Count), Just(AggFunc::Avg)],
    ) {
        let fname = match func { AggFunc::Sum => "SUM", AggFunc::Count => "COUNT", _ => "AVG" };
        let mut wheres = vec![dpred.sql.clone()];
        if both {
            wheres.push(ipred.sql.clone());
        }
        let sql = format!(
            "SELECT c_age, {fname}(l_quantity) FROM customer \
             JOIN orders ON customer.c_custkey = orders.o_custkey \
             JOIN lineitem ON orders.o_orderkey = lineitem.l_orderkey \
             WHERE {} GROUP BY c_age",
            wheres.join(" AND ")
        );
        let parsed = parse_query(&sql, 3, &Universe).expect(&sql);

        let mut b = QueryBuilder::new(3)
            .join("customer", "customer.c_custkey", "orders", "orders.o_custkey")
            .join("orders", "orders.o_orderkey", "lineitem", "lineitem.l_orderkey")
            .filter(&dpred.attr, dpred.interval.clone());
        if both {
            b = b.filter(&ipred.attr, ipred.interval.clone());
        }
        let hand = b
            .group_by("customer.c_age")
            .agg(AggExpr::new(func, "lineitem.l_quantity"))
            .build()
            .unwrap();
        prop_assert_eq!(parsed, hand);
    }

    // Raw byte soup: decode lossily, parse, never panic. Errors must
    // point inside the input.
    #[test]
    fn byte_soup_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..120)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        match parse_query(&src, 1, &Universe) {
            Ok(_) => {}
            Err(e) => {
                prop_assert!(e.span.start <= e.span.end);
                prop_assert!(e.span.end <= src.len().max(1));
                // Rendering the caret snippet must not panic either, even
                // with multi-byte replacement chars in the line.
                let _ = e.render(&src);
            }
        }
    }

    // Near-SQL token soup: random sequences of *valid* tokens reach much
    // deeper into the parser than byte soup does.
    #[test]
    fn token_soup_never_panics(picks in proptest::collection::vec(0usize..18, 0..40)) {
        const POOL: &[&str] = &[
            "SELECT", "FROM", "WHERE", "AND", "GROUP", "BY", "JOIN", "ON",
            "BETWEEN", "customer", "c_age", "o_orderdate", "*", ",", ".",
            "( )", "<= 42", "'1995-01-01'",
        ];
        let src = picks
            .iter()
            .map(|&i| POOL.get(i).copied().unwrap_or("?"))
            .collect::<Vec<_>>()
            .join(" ");
        match parse_query(&src, 1, &Universe) {
            Ok(_) => {}
            Err(e) => {
                prop_assert!(e.span.start <= e.span.end && e.span.end <= src.len().max(1));
                let _ = e.render(&src);
            }
        }
    }
}

/// Deterministic spot checks of inputs that historically trip hand-written
/// parsers: deep qualification, trailing operators, unterminated strings,
/// lone keywords, huge numbers, NUL bytes.
#[test]
fn hostile_corpus_is_rejected_gracefully() {
    for src in [
        "",
        ";",
        ".",
        "'",
        "''",
        "SELECT",
        "SELECT *",
        "SELECT * FROM",
        "SELECT * FROM t WHERE",
        "SELECT * FROM customer WHERE c_age",
        "SELECT * FROM customer WHERE c_age <",
        "SELECT * FROM customer WHERE c_age BETWEEN 1",
        "SELECT * FROM customer WHERE c_age BETWEEN 1 AND",
        "SELECT a.b.c FROM t",
        "SELECT * FROM customer WHERE c_age = 99999999999999999999",
        "SELECT * FROM customer WHERE c_age = 'unterminated",
        "SELECT \u{0} FROM t",
        "SELECT * FROM customer GROUP BY",
        "SELECT SUM( FROM t",
        "SELECT SUM(c_age)) FROM customer",
    ] {
        match parse_query(src, 1, &Universe) {
            Ok(q) => panic!("hostile input parsed: {src:?} -> {q:?}"),
            Err(e) => {
                assert!(e.span.start <= e.span.end && e.span.end <= src.len().max(1));
                let _ = e.render(src);
            }
        }
    }
    // And `parse` alone (no schema) survives the same corpus.
    for src in ["\u{1F980}\u{1F980}", "é é é", "--", "((((((((((("] {
        let _ = parse(src);
    }
}
