//! Randomized 64-query exploration traces with controlled reuse potential.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hashstash_plan::{AggExpr, AggFunc, Interval, QueryBuilder, QuerySpec};
use hashstash_storage::tpch;
use hashstash_types::Value;

/// The user interactions the trace generator simulates (paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interaction {
    /// The session's first query (TPC-H Q3 shape).
    Initial,
    /// Narrow the date range around its center.
    ZoomIn,
    /// Widen the date range around its center.
    ZoomOut,
    /// Move the range far away (little overlap).
    ShiftMuch,
    /// Move the range slightly (large overlap).
    ShiftLess,
    /// Add a PART or SUPPLIER join plus a group-by attribute.
    DrillDown,
    /// Remove a group-by attribute.
    RollUp,
}

/// Reuse potential of a trace: the average data overlap between consecutive
/// queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReusePotential {
    /// ≈ 1% overlap — a user hopping across the data set.
    Low,
    /// ≈ 10% overlap.
    Medium,
    /// ≈ 50% overlap — focused exploration of one region.
    High,
}

impl ReusePotential {
    /// Target overlap fraction between consecutive date ranges.
    pub fn target_overlap(self) -> f64 {
        match self {
            ReusePotential::Low => 0.01,
            ReusePotential::Medium => 0.10,
            ReusePotential::High => 0.50,
        }
    }
}

/// Trace generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Reuse potential level.
    pub reuse: ReusePotential,
    /// Number of queries (the paper uses 64).
    pub queries: usize,
    /// RNG seed — identical seeds produce identical traces.
    pub seed: u64,
    /// Probability of structural interactions (drill-down/roll-up); the
    /// rest are range mutations.
    pub structural_prob: f64,
}

impl TraceConfig {
    /// The paper's configuration for a given reuse potential.
    pub fn paper(reuse: ReusePotential, seed: u64) -> Self {
        TraceConfig {
            reuse,
            queries: 64,
            seed,
            structural_prob: 0.15,
        }
    }
}

/// One step of a trace.
#[derive(Debug, Clone)]
pub struct TraceQuery {
    /// The interaction that produced this query.
    pub interaction: Interaction,
    /// The query itself.
    pub query: QuerySpec,
    /// The shipdate range `[lo, hi)` in days-since-epoch (for overlap
    /// statistics).
    pub range: (i32, i32),
}

/// State carried between interactions.
struct SessionState {
    lo: i32,
    hi: i32,
    /// Extra group-by attributes in drill order.
    drill_groups: Vec<&'static str>,
    /// Whether the PART / SUPPLIER joins are active.
    part_joined: bool,
    supplier_joined: bool,
}

/// Generate a trace.
pub fn generate_trace(cfg: TraceConfig) -> Vec<TraceQuery> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let domain_lo = tpch::min_order_date();
    let domain_hi = tpch::max_ship_date();
    let domain_len = (domain_hi - domain_lo) as f64;

    // Initial range length scales with the reuse potential: a hopping user
    // (low) looks at small slices all over the data; a focused user (high)
    // works a wider region. This also keeps the *achieved* overlap close to
    // the paper's 1% / 10% / 50% targets.
    let len_share = match cfg.reuse {
        ReusePotential::Low => 0.02,
        ReusePotential::Medium => 0.05,
        ReusePotential::High => 0.08,
    };
    let init_len = (domain_len * len_share) as i32;
    let start = domain_lo + rng.gen_range(0..(domain_hi - domain_lo - init_len));
    let mut state = SessionState {
        lo: start,
        hi: start + init_len,
        drill_groups: Vec::new(),
        part_joined: false,
        supplier_joined: false,
    };

    let mut out = Vec::with_capacity(cfg.queries);
    out.push(TraceQuery {
        interaction: Interaction::Initial,
        query: build_query(0, &state),
        range: (state.lo, state.hi),
    });

    for i in 1..cfg.queries {
        let interaction = pick_interaction(&mut rng, cfg, &state);
        apply(&mut rng, cfg, &mut state, interaction, domain_lo, domain_hi);
        out.push(TraceQuery {
            interaction,
            query: build_query(i as u32, &state),
            range: (state.lo, state.hi),
        });
    }
    out
}

fn pick_interaction(rng: &mut SmallRng, cfg: TraceConfig, state: &SessionState) -> Interaction {
    if rng.gen_bool(cfg.structural_prob) {
        // Structural: drill deeper or roll back up.
        if !state.drill_groups.is_empty() && rng.gen_bool(0.5) {
            return Interaction::RollUp;
        }
        if state.drill_groups.len() < 2 {
            return Interaction::DrillDown;
        }
        return Interaction::RollUp;
    }
    match cfg.reuse {
        // Low reuse: the user jumps around the data set.
        ReusePotential::Low => Interaction::ShiftMuch,
        ReusePotential::Medium => {
            if rng.gen_bool(0.65) {
                Interaction::ShiftMuch
            } else if rng.gen_bool(0.5) {
                Interaction::ShiftLess
            } else {
                Interaction::ZoomOut
            }
        }
        ReusePotential::High => match rng.gen_range(0..4) {
            0 => Interaction::ZoomIn,
            1 => Interaction::ZoomOut,
            _ => Interaction::ShiftLess,
        },
    }
}

fn apply(
    rng: &mut SmallRng,
    cfg: TraceConfig,
    state: &mut SessionState,
    interaction: Interaction,
    domain_lo: i32,
    domain_hi: i32,
) {
    let len = (state.hi - state.lo).max(7);
    let overlap = cfg.reuse.target_overlap();
    match interaction {
        Interaction::Initial => {}
        Interaction::ZoomIn => {
            // Keep the center; shrink to the overlap-share of the length
            // (bounded below so queries stay non-trivial).
            let new_len = ((len as f64) * overlap.max(0.4)) as i32;
            let new_len = new_len.max(7);
            let center = state.lo + len / 2;
            state.lo = center - new_len / 2;
            state.hi = state.lo + new_len;
        }
        Interaction::ZoomOut => {
            let new_len =
                ((len as f64) / overlap.max(0.4)).min((domain_hi - domain_lo) as f64 * 0.5) as i32;
            let center = state.lo + len / 2;
            state.lo = (center - new_len / 2).max(domain_lo);
            state.hi = (state.lo + new_len).min(domain_hi);
        }
        Interaction::ShiftLess => {
            // A small shift keeps one endpoint and extends the other — the
            // paper's own ShiftLess step widens [1996-09, 1998-01] to
            // [1994-01, 1998-01]. The new range is a superset of the old
            // one, which is exactly what enables partial reuse of the
            // cached aggregation table (Table 8b reports `S` for Agg here).
            let keep = overlap.max(0.3);
            let grow = ((len as f64) * (1.0 - keep)) as i32;
            let max_len = ((domain_hi - domain_lo) as f64 * 0.4) as i32;
            if len + grow > max_len {
                // Focus drifted too wide: restart from a narrow sub-range.
                let new_len = (len as f64 * keep) as i32;
                let center = state.lo + len / 2;
                state.lo = (center - new_len / 2).max(domain_lo);
                state.hi = (state.lo + new_len.max(7)).min(domain_hi);
            } else if rng.gen_bool(0.5) {
                state.hi = (state.hi + grow).min(domain_hi);
            } else {
                state.lo = (state.lo - grow).max(domain_lo);
            }
        }
        Interaction::ShiftMuch => {
            // Jump to a uniformly random location: a user changing focus to
            // a different part of the data (little overlap, and crucially no
            // systematic revisits of previous ranges).
            state.lo = domain_lo + rng.gen_range(0..(domain_hi - domain_lo - len).max(1));
            state.hi = state.lo + len;
        }
        Interaction::DrillDown => {
            if !state.part_joined {
                state.part_joined = true;
                state.drill_groups.push("part.p_brand");
            } else if !state.supplier_joined {
                state.supplier_joined = true;
                state.drill_groups.push("supplier.s_nationkey");
            }
            structural_shift(rng, cfg, state, domain_lo, domain_hi);
        }
        Interaction::RollUp => {
            // Keep the joins in place; only the grouping coarsens — this is
            // what enables exact-reuse with post-aggregation.
            state.drill_groups.pop();
            structural_shift(rng, cfg, state, domain_lo, domain_hi);
        }
    }
}

/// In low/medium-reuse sessions even structural interactions move to a new
/// data region (the user drills into a *different* part of the data); in
/// high-reuse sessions the range is kept, which is what makes the roll-up
/// an exact reuse over the same predicate.
fn structural_shift(
    rng: &mut SmallRng,
    cfg: TraceConfig,
    state: &mut SessionState,
    domain_lo: i32,
    domain_hi: i32,
) {
    if cfg.reuse == ReusePotential::High {
        return;
    }
    let len = (state.hi - state.lo).max(7);
    if cfg.reuse == ReusePotential::Low {
        // Hop to a random region, like ShiftMuch.
        state.lo = domain_lo + rng.gen_range(0..(domain_hi - domain_lo - len).max(1));
        state.hi = state.lo + len;
        return;
    }
    let keep = cfg.reuse.target_overlap();
    let step = ((len as f64) * (1.0 - keep)) as i32;
    let dir = if rng.gen_bool(0.5) { 1 } else { -1 };
    let mut lo = state.lo + dir * step;
    if lo < domain_lo || lo + len > domain_hi {
        lo = state.lo - dir * step;
    }
    state.lo = lo.clamp(domain_lo, domain_hi - len);
    state.hi = state.lo + len;
}

fn build_query(id: u32, state: &SessionState) -> QuerySpec {
    let mut b = QueryBuilder::new(id)
        .join(
            "customer",
            "customer.c_custkey",
            "orders",
            "orders.o_custkey",
        )
        .join(
            "orders",
            "orders.o_orderkey",
            "lineitem",
            "lineitem.l_orderkey",
        )
        .filter(
            "lineitem.l_shipdate",
            Interval::half_open(Value::Date(state.lo), Value::Date(state.hi)),
        )
        .group_by("customer.c_age")
        .agg(AggExpr::new(AggFunc::Sum, "lineitem.l_quantity"))
        .agg(AggExpr::new(AggFunc::Count, "lineitem.l_orderkey"));
    if state.part_joined {
        b = b.join("lineitem", "lineitem.l_partkey", "part", "part.p_partkey");
    }
    if state.supplier_joined {
        b = b.join(
            "lineitem",
            "lineitem.l_suppkey",
            "supplier",
            "supplier.s_suppkey",
        );
    }
    for g in &state.drill_groups {
        b = b.group_by(g);
    }
    b.build().expect("generated query is valid")
}

/// Average *reuse-oriented* overlap between consecutive queries: the
/// fraction of the new query's data that the previous query already read,
/// `|r_i ∩ r_{i+1}| / |r_{i+1}|`. This is the quantity that bounds how much
/// a reuse strategy can possibly save (the paper's 1% / 10% / 50%).
pub fn average_overlap(trace: &[TraceQuery]) -> f64 {
    if trace.len() < 2 {
        return 1.0;
    }
    let mut total = 0.0;
    for w in trace.windows(2) {
        let (a_lo, a_hi) = w[0].range;
        let (b_lo, b_hi) = w[1].range;
        let inter = (a_hi.min(b_hi) - a_lo.max(b_lo)).max(0) as f64;
        let new_len = (b_hi - b_lo).max(1) as f64;
        total += inter / new_len;
    }
    total / (trace.len() - 1) as f64
}

/// Group a trace into batches of the given size (paper Exp 4).
pub fn batches(trace: &[TraceQuery], size: usize) -> Vec<Vec<QuerySpec>> {
    trace
        .chunks(size)
        .map(|chunk| chunk.iter().map(|t| t.query.clone()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_has_requested_length_and_is_deterministic() {
        let cfg = TraceConfig::paper(ReusePotential::Medium, 7);
        let a = generate_trace(cfg);
        let b = generate_trace(cfg);
        assert_eq!(a.len(), 64);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.interaction, y.interaction);
            assert_eq!(x.range, y.range);
        }
        let c = generate_trace(TraceConfig::paper(ReusePotential::Medium, 8));
        assert!(a.iter().zip(&c).any(|(x, y)| x.range != y.range));
    }

    #[test]
    fn first_query_is_q3_shape() {
        let t = generate_trace(TraceConfig::paper(ReusePotential::High, 1));
        let q = &t[0].query;
        assert_eq!(t[0].interaction, Interaction::Initial);
        assert_eq!(q.tables.len(), 3);
        assert_eq!(q.joins.len(), 2);
        assert!(q.is_aggregate());
    }

    #[test]
    fn overlap_ordering_matches_reuse_potential() {
        let low = average_overlap(&generate_trace(TraceConfig::paper(ReusePotential::Low, 3)));
        let med = average_overlap(&generate_trace(TraceConfig::paper(
            ReusePotential::Medium,
            3,
        )));
        let high = average_overlap(&generate_trace(TraceConfig::paper(ReusePotential::High, 3)));
        assert!(low < med, "low={low} med={med}");
        assert!(med < high, "med={med} high={high}");
        assert!(low < 0.05, "low overlap ≈1%: {low}");
        assert!(high > 0.40, "high overlap ≈50%: {high}");
    }

    #[test]
    fn all_queries_validate() {
        for reuse in [
            ReusePotential::Low,
            ReusePotential::Medium,
            ReusePotential::High,
        ] {
            for t in generate_trace(TraceConfig::paper(reuse, 5)) {
                t.query.validate().unwrap();
            }
        }
    }

    #[test]
    fn drilldowns_add_tables_and_groups() {
        let t = generate_trace(TraceConfig {
            reuse: ReusePotential::High,
            queries: 64,
            seed: 11,
            structural_prob: 0.5,
        });
        assert!(
            t.iter().any(|q| q.interaction == Interaction::DrillDown),
            "expected a drill-down in 64 queries"
        );
        let drilled = t
            .iter()
            .find(|q| q.interaction == Interaction::DrillDown)
            .unwrap();
        assert!(drilled.query.tables.len() > 3);
        assert!(drilled.query.group_by.len() > 1);
    }

    #[test]
    fn batches_partition_the_trace() {
        let t = generate_trace(TraceConfig::paper(ReusePotential::Medium, 2));
        let bs = batches(&t, 16);
        assert_eq!(bs.len(), 4);
        assert!(bs.iter().all(|b| b.len() == 16));
        let total: usize = bs.iter().map(Vec::len).sum();
        assert_eq!(total, 64);
    }
}
