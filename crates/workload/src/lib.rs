//! Workload generation for the paper's experiments (§6).
//!
//! Each workload is a 64-query data-exploration session over the TPC-H
//! schema. The initial query is TPC-H Q3 (a three-way join of CUSTOMER,
//! ORDERS and LINEITEM with an aggregation on top); follow-up queries apply
//! the interactions of analytical front-ends — zoom-in/out, shift (much /
//! less), drill-down (adds PART / SUPPLIER joins and a group-by attribute)
//! and roll-up (removes a group-by attribute).
//!
//! Three reuse-potential levels control the average overlap of data read by
//! consecutive queries: **low ≈ 1%**, **medium ≈ 10%**, **high ≈ 50%**.

pub mod session;
pub mod trace;

pub use session::{exp2_session, Exp2Step};
pub use trace::{generate_trace, Interaction, ReusePotential, TraceConfig, TraceQuery};
