//! The fixed seven-query session of the paper's Experiment 2a
//! (Figure 8a / Table 8b).
//!
//! The first query is a 5-way SPJA join over LINEITEM, ORDERS, PART,
//! CUSTOMER and SUPPLIER. The six follow-ups apply, in order: zoom-in,
//! zoom-out, shift-much, shift-less (all modifying the `o_orderdate`
//! selection), drill-down (adds the `p_brand` group-by attribute) and
//! roll-up (removes `p_mfgr`).

use hashstash_plan::{AggExpr, AggFunc, Interval, QueryBuilder, QuerySpec};
use hashstash_types::{date, Value};

/// One step of the Exp 2a session.
#[derive(Debug, Clone)]
pub struct Exp2Step {
    /// Interaction name as printed in the paper's Table 8b.
    pub name: &'static str,
    /// The query.
    pub query: QuerySpec,
}

fn d(s: &str) -> Value {
    Value::Date(date::parse_date(s).expect("valid literal"))
}

#[derive(Clone)]
struct StepSpec {
    name: &'static str,
    lo: &'static str,
    hi: &'static str,
    group_by: &'static [&'static str],
}

/// Build the seven-query session. Group-by evolution:
/// `[p_mfgr]` → … → drill-down `[p_mfgr, p_brand]` → roll-up `[p_brand]`.
pub fn exp2_session() -> Vec<Exp2Step> {
    const BASE_GROUPS: &[&str] = &["part.p_mfgr"];
    const DRILL_GROUPS: &[&str] = &["part.p_mfgr", "part.p_brand"];
    const ROLLUP_GROUPS: &[&str] = &["part.p_brand"];
    let steps: Vec<StepSpec> = vec![
        StepSpec {
            name: "Initial",
            lo: "1994-01-01",
            hi: "1996-06-01",
            group_by: BASE_GROUPS,
        },
        StepSpec {
            name: "ZoomIn",
            lo: "1996-06-01",
            hi: "1996-09-01",
            group_by: BASE_GROUPS,
        },
        StepSpec {
            name: "ZoomOut",
            lo: "1992-01-01",
            hi: "1998-01-01",
            group_by: BASE_GROUPS,
        },
        StepSpec {
            name: "ShiftMuch",
            lo: "1996-09-01",
            hi: "1998-01-01",
            group_by: BASE_GROUPS,
        },
        StepSpec {
            name: "ShiftLess",
            lo: "1994-01-01",
            hi: "1998-01-01",
            group_by: BASE_GROUPS,
        },
        StepSpec {
            name: "DrillDown",
            lo: "1994-01-01",
            hi: "1998-01-01",
            group_by: DRILL_GROUPS,
        },
        StepSpec {
            name: "RollUp",
            lo: "1994-01-01",
            hi: "1998-01-01",
            group_by: ROLLUP_GROUPS,
        },
    ];
    steps
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            let mut b = QueryBuilder::new(i as u32)
                .join(
                    "customer",
                    "customer.c_custkey",
                    "orders",
                    "orders.o_custkey",
                )
                .join(
                    "orders",
                    "orders.o_orderkey",
                    "lineitem",
                    "lineitem.l_orderkey",
                )
                .join("lineitem", "lineitem.l_partkey", "part", "part.p_partkey")
                .join(
                    "lineitem",
                    "lineitem.l_suppkey",
                    "supplier",
                    "supplier.s_suppkey",
                )
                .filter("orders.o_orderdate", Interval::half_open(d(s.lo), d(s.hi)))
                .agg(AggExpr::new(AggFunc::Sum, "lineitem.l_quantity"))
                .agg(AggExpr::new(AggFunc::Count, "lineitem.l_orderkey"));
            for g in s.group_by {
                b = b.group_by(g);
            }
            Exp2Step {
                name: s.name,
                query: b.build().expect("session query is valid"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_has_seven_steps_in_paper_order() {
        let s = exp2_session();
        assert_eq!(s.len(), 7);
        let names: Vec<&str> = s.iter().map(|x| x.name).collect();
        assert_eq!(
            names,
            vec![
                "Initial",
                "ZoomIn",
                "ZoomOut",
                "ShiftMuch",
                "ShiftLess",
                "DrillDown",
                "RollUp"
            ]
        );
    }

    #[test]
    fn all_queries_are_five_way_joins() {
        for step in exp2_session() {
            assert_eq!(step.query.tables.len(), 5, "{}", step.name);
            assert_eq!(step.query.joins.len(), 4);
            step.query.validate().unwrap();
        }
    }

    #[test]
    fn drilldown_and_rollup_mutate_group_by() {
        let s = exp2_session();
        let initial = &s[0].query;
        let drill = &s[5].query;
        let rollup = &s[6].query;
        assert_eq!(initial.group_by.len(), 1);
        assert_eq!(drill.group_by.len(), 2);
        assert_eq!(rollup.group_by.len(), 1);
        assert_eq!(rollup.group_by[0].as_ref(), "part.p_brand");
        // Roll-up keys are a subset of drill-down keys ⇒ post-aggregation
        // (exact reuse, decision string XXXXS in the paper).
        assert!(drill.group_by.contains(&rollup.group_by[0]));
    }

    #[test]
    fn zoomout_subsumes_zoomin() {
        let s = exp2_session();
        let zi = s[1].query.region();
        let zo = s[2].query.region();
        assert!(zi.is_subset(&zo));
        assert!(!zo.is_subset(&zi));
    }
}
