//! Owned tuples flowing between operators.

use crate::value::Value;

/// An owned row of scalar values.
///
/// Rows are the unit of data exchange between physical operators. They are
/// deliberately simple — a thin wrapper over `Vec<Value>` with helpers for
/// projection and key extraction — because all performance-sensitive state
/// (the hash tables being reused) lives in `hashstash-hashtable`, not here.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Build a row from values.
    #[inline]
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// The underlying values.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of columns.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the row has no columns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at column `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Append a value (used when widening rows through joins).
    #[inline]
    pub fn push(&mut self, v: Value) {
        self.values.push(v);
    }

    /// Concatenate two rows (join output).
    pub fn concat(&self, other: &Row) -> Row {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Row { values }
    }

    /// Project onto the given column indices, cloning the selected values.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row {
            values: indices.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }

    /// Extract a composite 64-bit hash key over the given column indices.
    ///
    /// Single-column keys use the value's own `key64`; multi-column keys mix
    /// per-column keys with an FNV-style combiner. Collisions are resolved by
    /// the hash table's full-key comparison, so this only needs to be stable
    /// and well-distributed.
    pub fn key64(&self, indices: &[usize]) -> u64 {
        match indices {
            [] => 0,
            [i] => self.values[*i].key64(),
            many => {
                let mut h = crate::value::KEY64_SEED;
                for &i in many {
                    h = crate::value::key64_combine(h, self.values[i].key64());
                }
                h
            }
        }
    }

    /// Consume the row, returning the values.
    #[inline]
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row { values }
    }
}

impl std::fmt::Display for Row {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: &[i64]) -> Row {
        Row::new(vals.iter().map(|&v| Value::Int(v)).collect())
    }

    #[test]
    fn concat_and_project() {
        let a = row(&[1, 2]);
        let b = row(&[3]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(2), &Value::Int(3));
        let p = c.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Int(3), Value::Int(1)]);
    }

    #[test]
    fn key64_single_matches_value_key() {
        let r = row(&[7, 9]);
        assert_eq!(r.key64(&[1]), Value::Int(9).key64());
    }

    #[test]
    fn key64_multi_is_order_sensitive() {
        let r = row(&[1, 2]);
        assert_ne!(r.key64(&[0, 1]), r.key64(&[1, 0]));
    }

    #[test]
    fn key64_equal_rows_equal_keys() {
        let a = row(&[5, 6]);
        let b = row(&[5, 6]);
        assert_eq!(a.key64(&[0, 1]), b.key64(&[0, 1]));
    }

    #[test]
    fn empty_key_is_constant() {
        // Aggregations without GROUP BY use an empty key set — every row maps
        // to the same group.
        assert_eq!(row(&[1]).key64(&[]), row(&[2]).key64(&[]));
    }

    #[test]
    fn display_row() {
        let r = Row::new(vec![Value::Int(1), Value::str("a")]);
        assert_eq!(r.to_string(), "(1, a)");
    }
}
