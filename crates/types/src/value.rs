//! Self-contained scalar values.
//!
//! HashStash stores join/aggregation keys and tuple payloads as [`Value`]s.
//! Values must be totally ordered and hashable (they are hash-table keys and
//! group-by keys), which rules out raw `f64`; floats are wrapped in [`F64`],
//! an order-by-bits wrapper that treats `NaN` as greater than all numbers.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::date;

/// The type of a column or scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float with total order semantics.
    Float,
    /// UTF-8 string (dictionary-encoded in columnar storage).
    Str,
    /// Days since 1970-01-01 (proleptic Gregorian), stored as `i32`.
    Date,
}

impl DataType {
    /// Width in bytes a value of this type occupies inside a cached hash
    /// table payload. Strings are stored as dictionary codes, hence 4 bytes.
    #[inline]
    pub fn payload_width(self) -> usize {
        match self {
            DataType::Int | DataType::Float => 8,
            DataType::Str | DataType::Date => 4,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STR",
            DataType::Date => "DATE",
        };
        f.write_str(s)
    }
}

/// A totally ordered, hashable `f64` wrapper.
///
/// Ordering follows IEEE-754 `totalOrder` for the values a query engine
/// produces: `-inf < finite < +inf < NaN`. Two `NaN`s compare equal so the
/// wrapper can be used as a hash key.
#[derive(Debug, Clone, Copy)]
pub struct F64(pub f64);

impl F64 {
    /// Canonical bit pattern used for hashing/equality (collapses NaNs, and
    /// `-0.0` to `+0.0`).
    #[inline]
    fn canonical_bits(self) -> u64 {
        if self.0.is_nan() {
            f64::NAN.to_bits()
        } else if self.0 == 0.0 {
            0u64
        } else {
            self.0.to_bits()
        }
    }
}

impl PartialEq for F64 {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.canonical_bits() == other.canonical_bits()
    }
}
impl Eq for F64 {}

impl PartialOrd for F64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.0.is_nan(), other.0.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => self
                .0
                .partial_cmp(&other.0)
                .expect("non-NaN floats compare"),
        }
    }
}

impl Hash for F64 {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.canonical_bits().hash(state);
    }
}

impl fmt::Display for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An owned scalar value.
///
/// `Str` uses `Arc<str>` so cloning a row is a reference-count bump rather
/// than a heap copy; analytic rows are cloned on every pipeline boundary.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    Int(i64),
    Float(F64),
    Str(Arc<str>),
    Date(i32),
}

impl Value {
    /// Construct a float value.
    #[inline]
    pub fn float(v: f64) -> Self {
        Value::Float(F64(v))
    }

    /// Construct a string value.
    #[inline]
    pub fn str(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }

    /// Construct a date value from `(year, month, day)`.
    #[inline]
    pub fn date_ymd(y: i32, m: u32, d: u32) -> Self {
        Value::Date(date::days_from_ymd(y, m, d))
    }

    /// The data type of this value.
    #[inline]
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
            Value::Date(_) => DataType::Date,
        }
    }

    /// Integer content, if this is an `Int`.
    #[inline]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Float content, if this is a `Float`.
    #[inline]
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(F64(v)) => Some(*v),
            _ => None,
        }
    }

    /// String content, if this is a `Str`.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Date content (days since epoch), if this is a `Date`.
    #[inline]
    pub fn as_date(&self) -> Option<i32> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// A numeric view used by aggregation: ints and dates widen to `f64`.
    #[inline]
    pub fn to_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(F64(v)) => Some(*v),
            Value::Date(d) => Some(*d as f64),
            Value::Str(_) => None,
        }
    }

    /// A stable 64-bit encoding of the value used for hash-table keys.
    ///
    /// Dates and ints map to their integer values; floats map to their
    /// canonical bit pattern; strings hash via FNV-1a (collisions are fine —
    /// the hash table chains verify full keys). The per-type encodings are
    /// also available as free functions ([`key64_int`], [`key64_date`],
    /// [`key64_float`], [`key64_str`]) so columnar kernels can derive the
    /// same keys straight from typed slices without materializing a `Value`.
    #[inline]
    pub fn key64(&self) -> u64 {
        match self {
            Value::Int(v) => key64_int(*v),
            Value::Date(d) => key64_date(*d),
            Value::Float(f) => key64_float(f.0),
            Value::Str(s) => key64_str(s),
        }
    }
}

/// [`Value::key64`] of an `Int`, from the raw `i64`.
#[inline]
pub fn key64_int(v: i64) -> u64 {
    v as u64
}

/// [`Value::key64`] of a `Date`, from the raw day count (sign-extended so
/// pre-epoch dates keep distinct keys).
#[inline]
pub fn key64_date(d: i32) -> u64 {
    d as i64 as u64
}

/// [`Value::key64`] of a `Float`, from the raw `f64` (canonical bits:
/// NaNs collapse, `-0.0` keys as `+0.0`).
#[inline]
pub fn key64_float(v: f64) -> u64 {
    F64(v).canonical_bits()
}

/// [`Value::key64`] of a `Str`, from the raw string.
#[inline]
pub fn key64_str(s: &str) -> u64 {
    fnv1a(s.as_bytes())
}

/// Seed for [`key64_combine`] — the FNV-1a offset basis.
pub const KEY64_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Fold one per-column key into a running composite key. Multi-column
/// hash-table keys ([`crate::Row::key64`] and the columnar kernels) must mix
/// per-column keys through this exact combiner, in column order, starting
/// from [`KEY64_SEED`] — the cached-table layouts published into the reuse
/// store depend on these keys being identical across executor paths.
#[inline]
pub fn key64_combine(h: u64, k: u64) -> u64 {
    let mut h = h ^ k;
    h = h.wrapping_mul(0x0000_0100_0000_01b3);
    h ^ (h >> 29)
}

/// A monotone `u64` key over the [`F64`] total order: for canonicalized
/// floats `a` and `b`, `F64(a) < F64(b)` iff
/// `f64_order_key(a) < f64_order_key(b)`, and equal (canonical) floats map
/// to equal keys. This turns *every* float interval predicate into an
/// inclusive `u64` range compare, which is what the columnar selection
/// kernels run: exclusive bounds become `key ± 1` (the map is injective on
/// canonical values), unbounded sides become `0` / `u64::MAX`.
#[inline]
pub fn f64_order_key(v: f64) -> u64 {
    // Canonicalize exactly like F64: all NaNs collapse to the positive
    // quiet NaN (greatest element), -0.0 to +0.0.
    let v = if v.is_nan() {
        f64::NAN
    } else if v == 0.0 {
        0.0
    } else {
        v
    };
    let b = v.to_bits();
    // Standard total-order flip: negatives reverse, positives shift above.
    if b >> 63 == 1 {
        !b
    } else {
        b | 0x8000_0000_0000_0000
    }
}

/// FNV-1a over a byte slice; used to derive stable hash-table keys from
/// strings without pulling in an external hashing crate.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A streaming [`std::hash::Hasher`] over the same pinned FNV-1a as
/// [`fnv1a`]: process-independent, toolchain-independent, seedless.
///
/// This is the drop-in replacement for `DefaultHasher` wherever a digest
/// must be comparable across processes or asserted against a golden value
/// (bench row digests, `#[derive(Hash)]` types in determinism checks).
/// `DefaultHasher`/`RandomState` are banned outside tests by the
/// `no-std-hasher` tidy lint precisely because their output is allowed to
/// change per process and per release.
#[derive(Debug, Clone)]
pub struct StableHasher(u64);

impl StableHasher {
    /// A hasher at the FNV-1a offset basis.
    #[inline]
    pub fn new() -> Self {
        StableHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl std::hash::Hasher for StableHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => {
                let (y, m, dd) = date::ymd_from_days(*d);
                write!(f, "{y:04}-{m:02}-{dd:02}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = StableHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn float_total_order() {
        let neg = F64(-1.5);
        let zero = F64(0.0);
        let negzero = F64(-0.0);
        let pos = F64(2.5);
        let inf = F64(f64::INFINITY);
        let nan = F64(f64::NAN);
        assert!(neg < zero);
        assert!(zero < pos);
        assert!(pos < inf);
        assert!(inf < nan);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert_eq!(zero, negzero);
        assert_eq!(hash_of(&zero), hash_of(&negzero));
        assert_eq!(hash_of(&nan), hash_of(&F64(f64::NAN)));
    }

    #[test]
    fn value_ordering_within_type() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::float(1.0) < Value::float(1.5));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::Date(10) < Value::Date(11));
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("BRAND#12").to_string(), "BRAND#12");
        assert_eq!(Value::date_ymd(2015, 2, 1).to_string(), "2015-02-01");
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_float(), None);
        assert_eq!(Value::float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Date(3).as_date(), Some(3));
        assert_eq!(Value::Int(7).to_f64(), Some(7.0));
        assert_eq!(Value::str("x").to_f64(), None);
    }

    #[test]
    fn key64_distinguishes_common_values() {
        assert_ne!(Value::Int(1).key64(), Value::Int(2).key64());
        assert_ne!(Value::str("a").key64(), Value::str("b").key64());
        // equal values must produce equal keys
        assert_eq!(Value::str("abc").key64(), Value::str("abc").key64());
        assert_eq!(Value::float(0.0).key64(), Value::float(-0.0).key64());
    }

    #[test]
    fn free_key64_functions_match_value_key64() {
        assert_eq!(key64_int(-7), Value::Int(-7).key64());
        assert_eq!(key64_date(-3), Value::Date(-3).key64());
        assert_eq!(key64_float(2.5), Value::float(2.5).key64());
        assert_eq!(key64_float(-0.0), Value::float(0.0).key64());
        assert_eq!(key64_float(f64::NAN), Value::float(f64::NAN).key64());
        assert_eq!(key64_str("Brand#12"), Value::str("Brand#12").key64());
    }

    #[test]
    fn f64_order_key_is_monotone_in_total_order() {
        let samples = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -0.0,
            0.0,
            1e-300,
            2.5,
            1e300,
            f64::INFINITY,
            f64::NAN,
        ];
        for a in samples {
            for b in samples {
                assert_eq!(
                    F64(a).cmp(&F64(b)),
                    f64_order_key(a).cmp(&f64_order_key(b)),
                    "order key must mirror F64 total order for {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn data_type_payload_width() {
        assert_eq!(DataType::Int.payload_width(), 8);
        assert_eq!(DataType::Float.payload_width(), 8);
        assert_eq!(DataType::Str.payload_width(), 4);
        assert_eq!(DataType::Date.payload_width(), 4);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3.5f64), Value::float(3.5));
        assert_eq!(Value::from("hi"), Value::str("hi"));
    }
}
