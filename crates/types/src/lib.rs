//! Fundamental scalar and schema types shared by every HashStash crate.
//!
//! This crate is the bottom of the dependency stack. It defines:
//!
//! * [`Value`] — a self-contained scalar (integer, float, string, date),
//!   totally ordered and hashable so it can serve as a group-by or join key.
//! * [`DataType`] / [`Schema`] — column metadata used by the storage layer,
//!   the planner and the executor.
//! * [`Row`] — an owned tuple of values flowing between operators.
//! * [`QidSet`] — the query-id bitmap of the Data-Query model used by shared
//!   plans (paper §4.1).
//! * [`date`] — proleptic-Gregorian day arithmetic so TPC-H dates can be
//!   stored as plain `i32` days and compared as integers.
//! * [`HsError`] — the crate-spanning error type.

pub mod date;
pub mod error;
pub mod ids;
pub mod row;
pub mod schema;
pub mod value;

pub use error::{HsError, Result};
pub use ids::{ColId, HtId, QidSet, QueryId, TableId};
pub use row::Row;
pub use schema::{Field, Schema};
pub use value::{
    f64_order_key, fnv1a, key64_combine, key64_date, key64_float, key64_int, key64_str, DataType,
    StableHasher, Value, F64, KEY64_SEED,
};
