//! Workspace-wide error type.

use std::fmt;

/// Errors surfaced by the HashStash engine and its substrates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HsError {
    /// A named table does not exist in the catalog.
    UnknownTable(String),
    /// A named column does not exist in a schema.
    UnknownColumn(String),
    /// Two operands or a column/value pair had incompatible types.
    TypeMismatch { expected: String, found: String },
    /// A query referenced structures the planner cannot handle.
    PlanError(String),
    /// The executor encountered an inconsistent physical plan.
    ExecError(String),
    /// The hash-table cache could not satisfy a request.
    CacheError(String),
    /// Invalid configuration (e.g. zero cache budget with GC disabled).
    Config(String),
}

impl fmt::Display for HsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HsError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            HsError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            HsError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            HsError::PlanError(m) => write!(f, "plan error: {m}"),
            HsError::ExecError(m) => write!(f, "execution error: {m}"),
            HsError::CacheError(m) => write!(f, "cache error: {m}"),
            HsError::Config(m) => write!(f, "configuration error: {m}"),
        }
    }
}

impl std::error::Error for HsError {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, HsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            HsError::UnknownTable("orders".into()).to_string(),
            "unknown table: orders"
        );
        assert_eq!(
            HsError::TypeMismatch {
                expected: "INT".into(),
                found: "STR".into()
            }
            .to_string(),
            "type mismatch: expected INT, found STR"
        );
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&HsError::PlanError("x".into()));
    }
}
