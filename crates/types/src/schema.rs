//! Column and schema metadata.

use crate::error::{HsError, Result};
use crate::value::DataType;

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Fully qualified name, e.g. `lineitem.l_shipdate`.
    pub name: String,
    /// Scalar type of the column.
    pub dtype: DataType,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered list of fields describing a table or an operator output.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields. Names must be unique.
    pub fn new(fields: Vec<Field>) -> Self {
        debug_assert!(
            {
                let mut names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                names.sort_unstable();
                names.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate field names in schema"
        );
        Schema { fields }
    }

    /// The fields in declaration order.
    #[inline]
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    #[inline]
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no columns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| HsError::UnknownColumn(name.to_string()))
    }

    /// Field with the given name.
    pub fn field(&self, name: &str) -> Result<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Field at position `i`.
    #[inline]
    pub fn field_at(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Concatenate two schemas (e.g. for join output).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema::new(fields)
    }

    /// Project the schema onto the given column names, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let fields = names
            .iter()
            .map(|n| self.field(n).cloned())
            .collect::<Result<Vec<_>>>()?;
        Ok(Schema::new(fields))
    }

    /// Total payload width in bytes of a tuple with this schema when stored
    /// inside a cached hash table (paper's `tWidth` parameter).
    pub fn tuple_width(&self) -> usize {
        self.fields.iter().map(|f| f.dtype.payload_width()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::new("customer.c_custkey", DataType::Int),
            Field::new("customer.c_age", DataType::Int),
            Field::new("customer.c_name", DataType::Str),
            Field::new("customer.c_acctbal", DataType::Float),
        ])
    }

    #[test]
    fn index_and_field_lookup() {
        let s = sample();
        assert_eq!(s.index_of("customer.c_age").unwrap(), 1);
        assert_eq!(s.field("customer.c_name").unwrap().dtype, DataType::Str);
        assert!(matches!(s.index_of("nope"), Err(HsError::UnknownColumn(_))));
    }

    #[test]
    fn concat_preserves_order() {
        let a = Schema::new(vec![Field::new("x", DataType::Int)]);
        let b = Schema::new(vec![Field::new("y", DataType::Float)]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 2);
        assert_eq!(c.field_at(0).name, "x");
        assert_eq!(c.field_at(1).name, "y");
    }

    #[test]
    fn project_reorders() {
        let s = sample();
        let p = s
            .project(&["customer.c_name", "customer.c_custkey"])
            .unwrap();
        assert_eq!(p.field_at(0).name, "customer.c_name");
        assert_eq!(p.field_at(1).name, "customer.c_custkey");
        assert!(s.project(&["missing"]).is_err());
    }

    #[test]
    fn tuple_width_sums_payload_widths() {
        // 8 (int) + 8 (int) + 4 (str code) + 8 (float) = 28
        assert_eq!(sample().tuple_width(), 28);
        assert_eq!(Schema::default().tuple_width(), 0);
    }
}
