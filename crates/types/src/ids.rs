//! Strongly-typed identifiers and the query-id bitset of the Data-Query model.

use std::fmt;

/// Identifier of a base table in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

/// Identifier of a column within a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColId(pub u32);

/// Identifier of a query within a session or batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u32);

/// Identifier of a cached hash table inside the Hash Table Manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HtId(pub u64);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}
impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}
impl fmt::Display for HtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HT{}", self.0)
    }
}

/// A set of query ids, represented as a 64-bit mask.
///
/// The paper's Data-Query model (§4.1, Figure 5) tags every tuple flowing
/// through a shared plan with the ids of the queries it qualifies for. The
/// paper's batches have at most 64 queries, so a single machine word
/// suffices; members are *batch-local* slots `0..64`, not global query ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct QidSet(pub u64);

impl QidSet {
    /// The empty set.
    pub const EMPTY: QidSet = QidSet(0);

    /// Maximum number of queries a batch may contain.
    pub const CAPACITY: usize = 64;

    /// Singleton set containing the batch-local slot `slot`.
    #[inline]
    pub fn single(slot: usize) -> Self {
        assert!(slot < Self::CAPACITY, "qid slot {slot} out of range");
        QidSet(1u64 << slot)
    }

    /// Set containing slots `0..n`.
    #[inline]
    pub fn first_n(n: usize) -> Self {
        assert!(n <= Self::CAPACITY, "batch of {n} queries exceeds capacity");
        if n == Self::CAPACITY {
            QidSet(u64::MAX)
        } else {
            QidSet((1u64 << n) - 1)
        }
    }

    /// Whether the set contains no queries.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether slot `slot` is a member.
    #[inline]
    pub fn contains(self, slot: usize) -> bool {
        slot < Self::CAPACITY && self.0 & (1u64 << slot) != 0
    }

    /// Insert slot `slot`.
    #[inline]
    pub fn insert(&mut self, slot: usize) {
        assert!(slot < Self::CAPACITY, "qid slot {slot} out of range");
        self.0 |= 1u64 << slot;
    }

    /// Number of member queries.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Set intersection — the core operation of shared join probing.
    #[inline]
    pub fn and(self, other: QidSet) -> QidSet {
        QidSet(self.0 & other.0)
    }

    /// Set union.
    #[inline]
    pub fn or(self, other: QidSet) -> QidSet {
        QidSet(self.0 | other.0)
    }

    /// Iterate over the member slots in increasing order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let slot = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(slot)
            }
        })
    }
}

impl fmt::Display for QidSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, slot) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "Q{slot}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_and_membership() {
        let s = QidSet::single(3);
        assert!(s.contains(3));
        assert!(!s.contains(2));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert!(QidSet::EMPTY.is_empty());
    }

    #[test]
    fn first_n_edges() {
        assert_eq!(QidSet::first_n(0), QidSet::EMPTY);
        assert_eq!(QidSet::first_n(3).len(), 3);
        assert_eq!(QidSet::first_n(64).len(), 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_out_of_range_panics() {
        let _ = QidSet::single(64);
    }

    #[test]
    fn and_or_iter() {
        let a = QidSet::single(0).or(QidSet::single(2));
        let b = QidSet::single(2).or(QidSet::single(5));
        assert_eq!(a.and(b), QidSet::single(2));
        assert_eq!(a.or(b).iter().collect::<Vec<_>>(), vec![0, 2, 5]);
    }

    #[test]
    fn display() {
        let a = QidSet::single(1).or(QidSet::single(3));
        assert_eq!(a.to_string(), "{Q1,Q3}");
        assert_eq!(QidSet::EMPTY.to_string(), "{}");
    }

    #[test]
    fn insert_accumulates() {
        let mut s = QidSet::EMPTY;
        s.insert(0);
        s.insert(63);
        assert!(s.contains(0) && s.contains(63));
        assert_eq!(s.len(), 2);
    }
}
