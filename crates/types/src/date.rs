//! Day-level date arithmetic (proleptic Gregorian calendar).
//!
//! TPC-H predicates compare `DATE` columns; storing dates as `i32` days since
//! 1970-01-01 turns those comparisons into integer comparisons, which is what
//! a main-memory engine wants. The conversions below use Howard Hinnant's
//! `days_from_civil` algorithm, valid for the entire `i32` range.

/// Days since 1970-01-01 for the given civil date.
///
/// `m` is 1-based (1 = January), `d` is 1-based.
pub fn days_from_ymd(y: i32, m: u32, d: u32) -> i32 {
    debug_assert!((1..=12).contains(&m), "month out of range: {m}");
    debug_assert!((1..=31).contains(&d), "day out of range: {d}");
    let y = if m <= 2 { y - 1 } else { y };
    let era: i32 = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u32; // [0, 399]
    let mp = (m + 9) % 12; // March = 0
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe as i32 - 719_468
}

/// Civil `(year, month, day)` for the given days-since-epoch value.
pub fn ymd_from_days(days: i32) -> (i32, u32, u32) {
    let z = days + 719_468;
    let era: i32 = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u32; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe as i32 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Parse a `YYYY-MM-DD` literal into days since epoch.
///
/// Returns `None` for malformed input; month/day bounds are validated.
pub fn parse_date(s: &str) -> Option<i32> {
    let mut parts = s.splitn(3, '-');
    let y: i32 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let d: u32 = parts.next()?.parse().ok()?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    let days = days_from_ymd(y, m, d);
    // Round-trip to reject out-of-range days such as Feb 30.
    if ymd_from_days(days) == (y, m, d) {
        Some(days)
    } else {
        None
    }
}

/// Format days-since-epoch as `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = ymd_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(days_from_ymd(1970, 1, 1), 0);
        assert_eq!(ymd_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        // TPC-H date range endpoints used by the paper's workloads.
        assert_eq!(days_from_ymd(1992, 1, 1), 8035);
        assert_eq!(days_from_ymd(1998, 12, 31), 10_591);
        assert_eq!(ymd_from_days(8035), (1992, 1, 1));
    }

    #[test]
    fn round_trip_sweep() {
        // Every day across several leap/non-leap years round-trips.
        let start = days_from_ymd(1992, 1, 1);
        let end = days_from_ymd(2001, 1, 1);
        for d in start..end {
            let (y, m, dd) = ymd_from_days(d);
            assert_eq!(days_from_ymd(y, m, dd), d);
        }
    }

    #[test]
    fn leap_years() {
        assert_eq!(
            days_from_ymd(1996, 2, 29) + 1,
            days_from_ymd(1996, 3, 1),
            "1996 is a leap year"
        );
        assert_eq!(
            days_from_ymd(2000, 2, 29) + 1,
            days_from_ymd(2000, 3, 1),
            "2000 is a leap year (divisible by 400)"
        );
        assert!(
            parse_date("1900-02-29").is_none(),
            "1900 is not a leap year"
        );
    }

    #[test]
    fn parse_and_format() {
        assert_eq!(parse_date("2015-02-01"), Some(days_from_ymd(2015, 2, 1)));
        assert_eq!(format_date(parse_date("2015-02-01").unwrap()), "2015-02-01");
        assert_eq!(parse_date("2015-13-01"), None);
        assert_eq!(parse_date("2015-02-30"), None);
        assert_eq!(parse_date("garbage"), None);
        assert_eq!(parse_date("2015-02"), None);
    }

    #[test]
    fn negative_days_before_epoch() {
        assert_eq!(days_from_ymd(1969, 12, 31), -1);
        assert_eq!(ymd_from_days(-1), (1969, 12, 31));
    }
}
