//! One-dimensional predicate intervals over [`Value`]s.
//!
//! An [`Interval`] represents the set of values an attribute may take under
//! a conjunctive selection predicate (`l_shipdate >= '2015-01-01'`,
//! `c_age BETWEEN 20 AND 30`, `p_brand = 'Brand#12'`, …).
//!
//! Discrete types (`Int`, `Date`) canonicalize exclusive bounds into
//! inclusive ones (`x > 3` becomes `x >= 4`), which makes emptiness,
//! containment and difference exact. Continuous (`Float`) and string types
//! keep their bound kinds.

use std::cmp::Ordering;
use std::ops::Bound;

use hashstash_types::{DataType, Value};

/// A (possibly unbounded) interval of attribute values.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Interval {
    lo: Bound<Value>,
    hi: Bound<Value>,
}

/// Successor of a discrete value (used for canonicalization).
fn succ(v: &Value) -> Option<Value> {
    match v {
        Value::Int(x) => x.checked_add(1).map(Value::Int),
        Value::Date(x) => x.checked_add(1).map(Value::Date),
        _ => None,
    }
}

/// Predecessor of a discrete value.
fn pred(v: &Value) -> Option<Value> {
    match v {
        Value::Int(x) => x.checked_sub(1).map(Value::Int),
        Value::Date(x) => x.checked_sub(1).map(Value::Date),
        _ => None,
    }
}

fn is_discrete(v: &Value) -> bool {
    matches!(v.data_type(), DataType::Int | DataType::Date)
}

/// Compare two lower bounds: which one starts earlier?
fn cmp_lo(a: &Bound<Value>, b: &Bound<Value>) -> Ordering {
    match (a, b) {
        (Bound::Unbounded, Bound::Unbounded) => Ordering::Equal,
        (Bound::Unbounded, _) => Ordering::Less,
        (_, Bound::Unbounded) => Ordering::Greater,
        (Bound::Included(x), Bound::Included(y)) | (Bound::Excluded(x), Bound::Excluded(y)) => {
            x.cmp(y)
        }
        // At the same point, an inclusive lower bound starts earlier.
        (Bound::Included(x), Bound::Excluded(y)) => x.cmp(y).then(Ordering::Less),
        (Bound::Excluded(x), Bound::Included(y)) => x.cmp(y).then(Ordering::Greater),
    }
}

/// Compare two upper bounds: which one ends earlier?
fn cmp_hi(a: &Bound<Value>, b: &Bound<Value>) -> Ordering {
    match (a, b) {
        (Bound::Unbounded, Bound::Unbounded) => Ordering::Equal,
        (Bound::Unbounded, _) => Ordering::Greater,
        (_, Bound::Unbounded) => Ordering::Less,
        (Bound::Included(x), Bound::Included(y)) | (Bound::Excluded(x), Bound::Excluded(y)) => {
            x.cmp(y)
        }
        // At the same point, an exclusive upper bound ends earlier.
        (Bound::Included(x), Bound::Excluded(y)) => x.cmp(y).then(Ordering::Greater),
        (Bound::Excluded(x), Bound::Included(y)) => x.cmp(y).then(Ordering::Less),
    }
}

impl Interval {
    /// The unconstrained interval.
    pub fn all() -> Self {
        Interval {
            lo: Bound::Unbounded,
            hi: Bound::Unbounded,
        }
    }

    /// Construct and canonicalize an interval from raw bounds.
    pub fn new(lo: Bound<Value>, hi: Bound<Value>) -> Self {
        let lo = match lo {
            Bound::Excluded(v) if is_discrete(&v) => match succ(&v) {
                Some(s) => Bound::Included(s),
                None => Bound::Excluded(v), // i64::MAX: interval is empty anyway
            },
            other => other,
        };
        let hi = match hi {
            Bound::Excluded(v) if is_discrete(&v) => match pred(&v) {
                Some(p) => Bound::Included(p),
                None => Bound::Excluded(v),
            },
            other => other,
        };
        Interval { lo, hi }
    }

    /// `attr = v`.
    pub fn eq(v: Value) -> Self {
        Interval {
            lo: Bound::Included(v.clone()),
            hi: Bound::Included(v),
        }
    }

    /// `lo <= attr <= hi`.
    pub fn closed(lo: Value, hi: Value) -> Self {
        Interval::new(Bound::Included(lo), Bound::Included(hi))
    }

    /// `lo <= attr < hi` (canonicalizes for discrete types).
    pub fn half_open(lo: Value, hi: Value) -> Self {
        Interval::new(Bound::Included(lo), Bound::Excluded(hi))
    }

    /// `attr >= v`.
    pub fn at_least(v: Value) -> Self {
        Interval::new(Bound::Included(v), Bound::Unbounded)
    }

    /// `attr > v`.
    pub fn greater_than(v: Value) -> Self {
        Interval::new(Bound::Excluded(v), Bound::Unbounded)
    }

    /// `attr <= v`.
    pub fn at_most(v: Value) -> Self {
        Interval::new(Bound::Unbounded, Bound::Included(v))
    }

    /// `attr < v`.
    pub fn less_than(v: Value) -> Self {
        Interval::new(Bound::Unbounded, Bound::Excluded(v))
    }

    /// Lower bound.
    pub fn lo(&self) -> &Bound<Value> {
        &self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> &Bound<Value> {
        &self.hi
    }

    /// Whether the interval contains no values.
    pub fn is_empty(&self) -> bool {
        match (&self.lo, &self.hi) {
            (Bound::Unbounded, _) | (_, Bound::Unbounded) => false,
            (Bound::Included(a), Bound::Included(b)) => a > b,
            (Bound::Included(a), Bound::Excluded(b)) | (Bound::Excluded(a), Bound::Included(b)) => {
                a >= b
            }
            (Bound::Excluded(a), Bound::Excluded(b)) => {
                // For continuous types (a, b) is empty iff a >= b; for
                // discrete these were canonicalized away except at the i64
                // extremes, where a >= b is still the right emptiness test
                // except the pathological (MAX, MAX) which is empty too.
                a >= b
            }
        }
    }

    /// Whether the interval is the unconstrained interval.
    pub fn is_all(&self) -> bool {
        matches!((&self.lo, &self.hi), (Bound::Unbounded, Bound::Unbounded))
    }

    /// Whether `v` lies inside the interval.
    pub fn contains_value(&self, v: &Value) -> bool {
        let lo_ok = match &self.lo {
            Bound::Unbounded => true,
            Bound::Included(l) => v >= l,
            Bound::Excluded(l) => v > l,
        };
        let hi_ok = match &self.hi {
            Bound::Unbounded => true,
            Bound::Included(h) => v <= h,
            Bound::Excluded(h) => v < h,
        };
        lo_ok && hi_ok
    }

    /// Intersection of two intervals (may be empty).
    pub fn intersect(&self, other: &Interval) -> Interval {
        let lo = if cmp_lo(&self.lo, &other.lo) == Ordering::Less {
            other.lo.clone()
        } else {
            self.lo.clone()
        };
        let hi = if cmp_hi(&self.hi, &other.hi) == Ordering::Greater {
            other.hi.clone()
        } else {
            self.hi.clone()
        };
        Interval { lo, hi }
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &Interval) -> bool {
        if self.is_empty() {
            return true;
        }
        cmp_lo(&other.lo, &self.lo) != Ordering::Greater
            && cmp_hi(&self.hi, &other.hi) != Ordering::Greater
    }

    /// Whether the two intervals share at least one value.
    pub fn intersects(&self, other: &Interval) -> bool {
        !self.intersect(other).is_empty() && !self.is_empty() && !other.is_empty()
    }

    /// If the two intervals overlap or touch (no value lies strictly
    /// between them), return their hull; otherwise `None`. Used to coalesce
    /// predicate regions so lineage stays compact across many partial
    /// reuses.
    pub fn merge_touching(&self, other: &Interval) -> Option<Interval> {
        if self.is_empty() {
            return Some(other.clone());
        }
        if other.is_empty() {
            return Some(self.clone());
        }
        let touching = self.intersects(other)
            || Self::adjacent(&self.hi, &other.lo)
            || Self::adjacent(&other.hi, &self.lo);
        if !touching {
            return None;
        }
        let lo = if cmp_lo(&self.lo, &other.lo) == Ordering::Greater {
            other.lo.clone()
        } else {
            self.lo.clone()
        };
        let hi = if cmp_hi(&self.hi, &other.hi) == Ordering::Less {
            other.hi.clone()
        } else {
            self.hi.clone()
        };
        Some(Interval { lo, hi })
    }

    /// Whether an upper bound `hi` and a lower bound `lo` leave no gap.
    fn adjacent(hi: &Bound<Value>, lo: &Bound<Value>) -> bool {
        match (hi, lo) {
            (Bound::Included(h), Bound::Included(l)) => {
                // [.., h] and [l, ..]: contiguous when l = succ(h).
                succ(h).is_some_and(|s| &s == l)
            }
            // [.., h] and (h, ..] — or [.., h) and [h, ..] — tile exactly.
            (Bound::Included(h), Bound::Excluded(l)) => h == l,
            (Bound::Excluded(h), Bound::Included(l)) => h == l,
            _ => false,
        }
    }

    /// `self \ other` as up to two disjoint intervals.
    pub fn difference(&self, other: &Interval) -> Vec<Interval> {
        if self.is_empty() {
            return Vec::new();
        }
        if !self.intersects(other) {
            return vec![self.clone()];
        }
        let mut out = Vec::new();
        // Piece below `other`: [self.lo, flip(other.lo))
        let below_hi = match &other.lo {
            Bound::Unbounded => None,
            Bound::Included(v) => Some(Bound::Excluded(v.clone())),
            Bound::Excluded(v) => Some(Bound::Included(v.clone())),
        };
        if let Some(hi) = below_hi {
            let piece = Interval::new(self.lo.clone(), hi);
            if !piece.is_empty() {
                out.push(piece);
            }
        }
        // Piece above `other`: (flip(other.hi), self.hi]
        let above_lo = match &other.hi {
            Bound::Unbounded => None,
            Bound::Included(v) => Some(Bound::Excluded(v.clone())),
            Bound::Excluded(v) => Some(Bound::Included(v.clone())),
        };
        if let Some(lo) = above_lo {
            let piece = Interval::new(lo, self.hi.clone());
            if !piece.is_empty() {
                out.push(piece);
            }
        }
        out
    }

    /// Estimated fraction of the attribute's domain `[dom_lo, dom_hi]`
    /// covered by this interval. Used for selectivity estimation; strings
    /// fall back to `1/distinct` for equality and 0.5 otherwise.
    pub fn fraction(&self, dom_lo: &Value, dom_hi: &Value, distinct: u64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let num = |v: &Value| v.to_f64();
        match (num(dom_lo), num(dom_hi)) {
            (Some(dlo), Some(dhi)) if dhi > dlo => {
                let discrete = is_discrete(dom_lo);
                let width = if discrete { dhi - dlo + 1.0 } else { dhi - dlo };
                let lo = match &self.lo {
                    Bound::Unbounded => dlo,
                    Bound::Included(v) | Bound::Excluded(v) => {
                        num(v).unwrap_or(dlo).clamp(dlo, dhi)
                    }
                };
                let hi = match &self.hi {
                    Bound::Unbounded => dhi,
                    Bound::Included(v) | Bound::Excluded(v) => {
                        num(v).unwrap_or(dhi).clamp(dlo, dhi)
                    }
                };
                let span = if discrete { hi - lo + 1.0 } else { hi - lo };
                (span / width).clamp(0.0, 1.0)
            }
            _ => {
                // String or degenerate domain.
                let is_eq = matches!((&self.lo, &self.hi),
                    (Bound::Included(a), Bound::Included(b)) if a == b);
                if is_eq {
                    1.0 / distinct.max(1) as f64
                } else if self.is_all() {
                    1.0
                } else {
                    0.5
                }
            }
        }
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.lo {
            Bound::Unbounded => write!(f, "(-inf")?,
            Bound::Included(v) => write!(f, "[{v}")?,
            Bound::Excluded(v) => write!(f, "({v}")?,
        }
        write!(f, ", ")?;
        match &self.hi {
            Bound::Unbounded => write!(f, "+inf)"),
            Bound::Included(v) => write!(f, "{v}]"),
            Bound::Excluded(v) => write!(f, "{v})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: i64, hi: i64) -> Interval {
        Interval::closed(Value::Int(lo), Value::Int(hi))
    }

    #[test]
    fn canonicalization_discrete() {
        let a = Interval::greater_than(Value::Int(3));
        assert_eq!(a.lo(), &Bound::Included(Value::Int(4)));
        let b = Interval::less_than(Value::Date(100));
        assert_eq!(b.hi(), &Bound::Included(Value::Date(99)));
        // floats keep exclusive bounds
        let c = Interval::greater_than(Value::float(1.0));
        assert_eq!(c.lo(), &Bound::Excluded(Value::float(1.0)));
    }

    #[test]
    fn emptiness() {
        assert!(iv(5, 4).is_empty());
        assert!(!iv(5, 5).is_empty());
        assert!(!Interval::all().is_empty());
        let half = Interval::half_open(Value::Int(3), Value::Int(3));
        assert!(half.is_empty(), "[3,3) is empty");
        let f = Interval::new(
            Bound::Excluded(Value::float(1.0)),
            Bound::Excluded(Value::float(1.0)),
        );
        assert!(f.is_empty());
    }

    #[test]
    fn contains_value() {
        let a = iv(10, 20);
        assert!(a.contains_value(&Value::Int(10)));
        assert!(a.contains_value(&Value::Int(20)));
        assert!(!a.contains_value(&Value::Int(21)));
        let b = Interval::less_than(Value::float(2.0));
        assert!(b.contains_value(&Value::float(1.99)));
        assert!(!b.contains_value(&Value::float(2.0)));
    }

    #[test]
    fn intersection() {
        assert_eq!(iv(0, 10).intersect(&iv(5, 15)), iv(5, 10));
        assert!(iv(0, 4).intersect(&iv(5, 9)).is_empty());
        assert_eq!(Interval::all().intersect(&iv(1, 2)), iv(1, 2));
    }

    #[test]
    fn subset() {
        assert!(iv(5, 7).is_subset(&iv(0, 10)));
        assert!(iv(0, 10).is_subset(&iv(0, 10)));
        assert!(!iv(0, 11).is_subset(&iv(0, 10)));
        assert!(iv(5, 4).is_subset(&iv(100, 101)), "empty ⊆ anything");
        assert!(iv(1, 2).is_subset(&Interval::all()));
        assert!(!Interval::all().is_subset(&iv(1, 2)));
    }

    #[test]
    fn difference_middle_split() {
        let d = iv(0, 10).difference(&iv(3, 5));
        assert_eq!(d, vec![iv(0, 2), iv(6, 10)]);
    }

    #[test]
    fn difference_edges() {
        assert_eq!(iv(0, 10).difference(&iv(0, 4)), vec![iv(5, 10)]);
        assert_eq!(iv(0, 10).difference(&iv(7, 10)), vec![iv(0, 6)]);
        assert_eq!(iv(0, 10).difference(&iv(0, 10)), Vec::<Interval>::new());
        assert_eq!(iv(0, 10).difference(&iv(20, 30)), vec![iv(0, 10)]);
        assert_eq!(
            iv(0, 10).difference(&Interval::all()),
            Vec::<Interval>::new()
        );
    }

    #[test]
    fn difference_float_keeps_open_bounds() {
        let r = Interval::closed(Value::float(0.0), Value::float(10.0));
        let c = Interval::closed(Value::float(3.0), Value::float(5.0));
        let d = r.difference(&c);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].hi(), &Bound::Excluded(Value::float(3.0)));
        assert_eq!(d[1].lo(), &Bound::Excluded(Value::float(5.0)));
        // The pieces and the intersection must tile r: spot-check membership.
        for x in [0.0, 2.99, 3.0, 4.0, 5.0, 5.01, 10.0] {
            let v = Value::float(x);
            let in_r = r.contains_value(&v);
            let in_parts = d.iter().any(|p| p.contains_value(&v)) || c.contains_value(&v);
            assert_eq!(in_r, in_parts, "x={x}");
        }
    }

    #[test]
    fn fraction_estimates() {
        let dom_lo = Value::Int(0);
        let dom_hi = Value::Int(99);
        assert!((iv(0, 49).fraction(&dom_lo, &dom_hi, 100) - 0.5).abs() < 1e-9);
        assert!((Interval::all().fraction(&dom_lo, &dom_hi, 100) - 1.0).abs() < 1e-9);
        assert!((iv(0, 0).fraction(&dom_lo, &dom_hi, 100) - 0.01).abs() < 1e-9);
        let s = Interval::eq(Value::str("Brand#12"));
        assert!((s.fraction(&Value::str("A"), &Value::str("Z"), 25) - 0.04).abs() < 1e-9);
        assert_eq!(iv(5, 4).fraction(&dom_lo, &dom_hi, 100), 0.0);
    }

    #[test]
    fn display_formatting() {
        assert_eq!(iv(1, 2).to_string(), "[1, 2]");
        assert_eq!(Interval::all().to_string(), "(-inf, +inf)");
        assert_eq!(
            Interval::less_than(Value::float(2.0)).to_string(),
            "(-inf, 2)"
        );
    }

    #[test]
    fn eq_constructor() {
        let e = Interval::eq(Value::str("x"));
        assert!(e.contains_value(&Value::str("x")));
        assert!(!e.contains_value(&Value::str("y")));
        assert!(!e.is_empty());
    }
}
