//! Property tests for the interval algebra — the foundation the reuse-case
//! classifier stands on. Complemented by the region-level properties in the
//! workspace-level `tests/property_tests.rs`.

#![cfg(test)]

use proptest::prelude::*;
use std::ops::Bound;

use hashstash_types::Value;

use crate::interval::Interval;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-50i64..50).prop_map(Value::Int),
        (-50i32..50).prop_map(Value::Date),
    ]
}

fn bound_strategy() -> impl Strategy<Value = Bound<Value>> {
    prop_oneof![
        Just(Bound::Unbounded),
        value_strategy().prop_map(Bound::Included),
        value_strategy().prop_map(Bound::Excluded),
    ]
}

/// Int intervals (homogeneous type so bounds are comparable).
fn int_interval() -> impl Strategy<Value = Interval> {
    (
        prop_oneof![Just(None), (-50i64..50).prop_map(Some),],
        prop_oneof![Just(None), (-50i64..50).prop_map(Some),],
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(lo, hi, lo_excl, hi_excl)| {
            let lo = match lo {
                None => Bound::Unbounded,
                Some(v) if lo_excl => Bound::Excluded(Value::Int(v)),
                Some(v) => Bound::Included(Value::Int(v)),
            };
            let hi = match hi {
                None => Bound::Unbounded,
                Some(v) if hi_excl => Bound::Excluded(Value::Int(v)),
                Some(v) => Bound::Included(Value::Int(v)),
            };
            Interval::new(lo, hi)
        })
}

fn members(iv: &Interval) -> Vec<i64> {
    (-60..60)
        .filter(|&x| iv.contains_value(&Value::Int(x)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn intersection_is_pointwise_and(a in int_interval(), b in int_interval()) {
        let c = a.intersect(&b);
        for x in -60i64..60 {
            let v = Value::Int(x);
            prop_assert_eq!(
                c.contains_value(&v),
                a.contains_value(&v) && b.contains_value(&v),
                "x = {}", x
            );
        }
    }

    #[test]
    fn subset_iff_membership_subset(a in int_interval(), b in int_interval()) {
        let ma = members(&a);
        let mb = members(&b);
        let pointwise = ma.iter().all(|x| mb.contains(x));
        // Bounded test values: only check when a is fully inside the probe
        // window (unbounded intervals have members outside ±60).
        let a_windowed = a.is_subset(&Interval::closed(Value::Int(-60), Value::Int(59)));
        if a_windowed {
            prop_assert_eq!(a.is_subset(&b), pointwise || ma.is_empty());
        } else if a.is_subset(&b) {
            prop_assert!(pointwise);
        }
    }

    #[test]
    fn difference_tiles_the_source(a in int_interval(), b in int_interval()) {
        let pieces = a.difference(&b);
        prop_assert!(pieces.len() <= 2);
        for x in -60i64..60 {
            let v = Value::Int(x);
            let in_pieces = pieces.iter().any(|p| p.contains_value(&v));
            let expected = a.contains_value(&v) && !b.contains_value(&v);
            prop_assert_eq!(in_pieces, expected, "x = {}", x);
        }
        // Pieces are disjoint from b and from each other.
        for p in &pieces {
            prop_assert!(!p.intersects(&b));
        }
        if pieces.len() == 2 {
            prop_assert!(!pieces[0].intersects(&pieces[1]));
        }
    }

    #[test]
    fn merge_touching_is_exact_union(a in int_interval(), b in int_interval()) {
        if let Some(m) = a.merge_touching(&b) {
            for x in -60i64..60 {
                let v = Value::Int(x);
                prop_assert_eq!(
                    m.contains_value(&v),
                    a.contains_value(&v) || b.contains_value(&v),
                    "merge must not invent or drop values at x = {}", x
                );
            }
        } else {
            // Not merged ⇒ a real gap exists between them.
            let ma = members(&a);
            let mb = members(&b);
            if !ma.is_empty() && !mb.is_empty() {
                let lo = *ma.iter().chain(mb.iter()).min().unwrap();
                let hi = *ma.iter().chain(mb.iter()).max().unwrap();
                let gap = (lo..=hi).any(|x| {
                    !a.contains_value(&Value::Int(x)) && !b.contains_value(&Value::Int(x))
                });
                prop_assert!(gap, "unmergeable intervals must have a gap");
            }
        }
    }

    #[test]
    fn emptiness_matches_membership(a in int_interval()) {
        // For intervals within the probe window, is_empty ⇔ no members.
        if a.is_subset(&Interval::closed(Value::Int(-60), Value::Int(59))) {
            prop_assert_eq!(a.is_empty(), members(&a).is_empty());
        } else if a.is_empty() {
            prop_assert!(members(&a).is_empty());
        }
    }

    #[test]
    fn canonicalization_preserves_membership(lo in bound_strategy(), hi in bound_strategy()) {
        // Only same-type bound pairs are meaningful.
        let same_type = match (&lo, &hi) {
            (Bound::Included(a) | Bound::Excluded(a), Bound::Included(b) | Bound::Excluded(b)) =>
                a.data_type() == b.data_type(),
            _ => true,
        };
        prop_assume!(same_type);
        let iv = Interval::new(lo.clone(), hi.clone());
        let raw = Interval::all(); // reference membership via raw bounds
        let _ = raw;
        let check = |v: Value| {
            let lo_ok = match &lo {
                Bound::Unbounded => true,
                Bound::Included(l) => l.data_type() != v.data_type() || v >= *l,
                Bound::Excluded(l) => l.data_type() != v.data_type() || v > *l,
            };
            let hi_ok = match &hi {
                Bound::Unbounded => true,
                Bound::Included(h) => h.data_type() != v.data_type() || v <= *h,
                Bound::Excluded(h) => h.data_type() != v.data_type() || v < *h,
            };
            lo_ok && hi_ok
        };
        for x in -60i64..60 {
            let v = Value::Int(x);
            // Skip when bounds are dates (mixed-type comparison undefined).
            let bounds_are_int = match (&lo, &hi) {
                (Bound::Included(a) | Bound::Excluded(a), _) => a.data_type() == hashstash_types::DataType::Int,
                (_, Bound::Included(b) | Bound::Excluded(b)) => b.data_type() == hashstash_types::DataType::Int,
                _ => true,
            };
            if bounds_are_int {
                prop_assert_eq!(iv.contains_value(&v), check(v), "x = {}", x);
            }
        }
    }
}
