//! Logical SPJ / SPJA queries.
//!
//! The paper's query blocks are select–project–join (SPJ) or SPJA queries
//! (§3.1). A [`QuerySpec`] captures exactly that surface: a set of base
//! tables, equi-join edges along schema relationships, a conjunctive
//! selection box, an optional group-by with aggregates, and a projection.

use std::collections::BTreeSet;
use std::sync::Arc;

use hashstash_types::{HsError, QueryId, Result};

use crate::agg::AggExpr;
use crate::interval::Interval;
use crate::region::{PredBox, Region};

/// An equi-join between two tables on one column each.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JoinEdge {
    /// Left table name.
    pub left_table: Arc<str>,
    /// Qualified left join column, e.g. `orders.o_custkey`.
    pub left_col: Arc<str>,
    /// Right table name.
    pub right_table: Arc<str>,
    /// Qualified right join column, e.g. `customer.c_custkey`.
    pub right_col: Arc<str>,
}

impl JoinEdge {
    /// Construct an edge; tables are ordered lexicographically so that the
    /// same logical edge always has the same representation.
    pub fn new(left_table: &str, left_col: &str, right_table: &str, right_col: &str) -> Self {
        if left_table <= right_table {
            JoinEdge {
                left_table: left_table.into(),
                left_col: left_col.into(),
                right_table: right_table.into(),
                right_col: right_col.into(),
            }
        } else {
            JoinEdge {
                left_table: right_table.into(),
                left_col: right_col.into(),
                right_table: left_table.into(),
                right_col: left_col.into(),
            }
        }
    }

    /// Whether this edge touches the given table.
    pub fn touches(&self, table: &str) -> bool {
        self.left_table.as_ref() == table || self.right_table.as_ref() == table
    }

    /// The join column on the side of `table`, if the edge touches it.
    pub fn col_of(&self, table: &str) -> Option<&Arc<str>> {
        if self.left_table.as_ref() == table {
            Some(&self.left_col)
        } else if self.right_table.as_ref() == table {
            Some(&self.right_col)
        } else {
            None
        }
    }
}

impl std::fmt::Display for JoinEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} = {}", self.left_col, self.right_col)
    }
}

/// A logical SPJ or SPJA query.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Session-unique id.
    pub id: QueryId,
    /// Base tables referenced.
    pub tables: BTreeSet<Arc<str>>,
    /// Equi-join edges; must connect `tables`.
    pub joins: Vec<JoinEdge>,
    /// Conjunctive selection predicates over qualified attributes.
    pub predicates: PredBox,
    /// Group-by attributes (empty + empty aggregates = pure SPJ).
    pub group_by: Vec<Arc<str>>,
    /// Aggregate expressions (non-empty makes this an SPJA query).
    pub aggregates: Vec<AggExpr>,
    /// Projection for SPJ queries (ignored for SPJA — output is
    /// `group_by ++ aggregates`).
    pub projection: Vec<Arc<str>>,
}

impl QuerySpec {
    /// Whether this is an aggregation (SPJA) query.
    pub fn is_aggregate(&self) -> bool {
        !self.aggregates.is_empty()
    }

    /// The selection region (single-box) of the whole query.
    pub fn region(&self) -> Region {
        Region::from_box(self.predicates.clone())
    }

    /// Join edges restricted to a subset of tables (both endpoints inside).
    pub fn edges_within(&self, tables: &BTreeSet<Arc<str>>) -> Vec<JoinEdge> {
        self.joins
            .iter()
            .filter(|e| tables.contains(&e.left_table) && tables.contains(&e.right_table))
            .cloned()
            .collect()
    }

    /// Whether two queries have the same join graph — the paper's
    /// mergeability condition for shared plans (§4.2).
    pub fn same_join_graph(&self, other: &QuerySpec) -> bool {
        if self.tables != other.tables {
            return false;
        }
        let mut a = self.joins.clone();
        let mut b = other.joins.clone();
        a.sort();
        b.sort();
        a == b
    }

    /// Validate structural invariants (tables referenced by joins and
    /// predicates exist, join graph connects all tables).
    pub fn validate(&self) -> Result<()> {
        for e in &self.joins {
            for t in [&e.left_table, &e.right_table] {
                if !self.tables.contains(t) {
                    return Err(HsError::PlanError(format!(
                        "join edge references unknown table {t}"
                    )));
                }
            }
        }
        for (attr, _) in self.predicates.constrained() {
            let table = attr.split('.').next().unwrap_or("");
            if !self.tables.contains(table) {
                return Err(HsError::PlanError(format!(
                    "predicate on {attr} references table outside the query"
                )));
            }
        }
        if self.tables.len() > 1 {
            // Connectivity check via union-find over tables.
            let tables: Vec<&Arc<str>> = self.tables.iter().collect();
            let index = |t: &Arc<str>| tables.iter().position(|x| *x == t).expect("table exists");
            let mut parent: Vec<usize> = (0..tables.len()).collect();
            fn find(parent: &mut Vec<usize>, i: usize) -> usize {
                if parent[i] != i {
                    let root = find(parent, parent[i]);
                    parent[i] = root;
                }
                parent[i]
            }
            for e in &self.joins {
                let a = find(&mut parent, index(&e.left_table));
                let b = find(&mut parent, index(&e.right_table));
                parent[a] = b;
            }
            let root = find(&mut parent, 0);
            for (i, table) in tables.iter().enumerate().skip(1) {
                if find(&mut parent, i) != root {
                    return Err(HsError::PlanError(format!(
                        "join graph is disconnected at table {table}"
                    )));
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for QuerySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: SELECT ", self.id)?;
        if self.is_aggregate() {
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
            for a in &self.aggregates {
                if !self.group_by.is_empty() {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
        } else if self.projection.is_empty() {
            write!(f, "*")?;
        } else {
            for (i, p) in self.projection.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{p}")?;
            }
        }
        write!(f, " FROM ")?;
        for (i, t) in self.tables.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, " WHERE {}", self.predicates)?;
        for e in &self.joins {
            write!(f, " AND {e}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        Ok(())
    }
}

/// Fluent builder for [`QuerySpec`].
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    spec: QuerySpec,
}

impl QueryBuilder {
    /// Start building a query with the given id.
    pub fn new(id: u32) -> Self {
        QueryBuilder {
            spec: QuerySpec {
                id: QueryId(id),
                tables: BTreeSet::new(),
                joins: Vec::new(),
                predicates: PredBox::all(),
                group_by: Vec::new(),
                aggregates: Vec::new(),
                projection: Vec::new(),
            },
        }
    }

    /// Add a base table.
    pub fn table(mut self, name: &str) -> Self {
        self.spec.tables.insert(name.into());
        self
    }

    /// Add an equi-join edge (tables are added implicitly).
    pub fn join(mut self, lt: &str, lc: &str, rt: &str, rc: &str) -> Self {
        self.spec.tables.insert(lt.into());
        self.spec.tables.insert(rt.into());
        self.spec.joins.push(JoinEdge::new(lt, lc, rt, rc));
        self
    }

    /// Constrain an attribute.
    pub fn filter(mut self, attr: &str, interval: Interval) -> Self {
        self.spec.predicates.constrain(attr, interval);
        self
    }

    /// Add a group-by attribute.
    pub fn group_by(mut self, attr: &str) -> Self {
        self.spec.group_by.push(attr.into());
        self
    }

    /// Add an aggregate expression.
    pub fn agg(mut self, a: AggExpr) -> Self {
        self.spec.aggregates.push(a);
        self
    }

    /// Set the SPJ projection.
    pub fn project(mut self, attrs: &[&str]) -> Self {
        self.spec.projection = attrs.iter().map(|a| Arc::from(*a)).collect();
        self
    }

    /// Finish, validating invariants.
    pub fn build(self) -> Result<QuerySpec> {
        self.spec.validate()?;
        Ok(self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFunc;
    use hashstash_types::Value;

    fn q3_like(id: u32) -> QuerySpec {
        QueryBuilder::new(id)
            .join(
                "customer",
                "customer.c_custkey",
                "orders",
                "orders.o_custkey",
            )
            .join(
                "orders",
                "orders.o_orderkey",
                "lineitem",
                "lineitem.l_orderkey",
            )
            .filter(
                "lineitem.l_shipdate",
                Interval::at_least(Value::date_ymd(2015, 2, 1)),
            )
            .group_by("customer.c_age")
            .agg(AggExpr::new(AggFunc::Sum, "lineitem.l_quantity"))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_valid_spec() {
        let q = q3_like(1);
        assert_eq!(q.tables.len(), 3);
        assert_eq!(q.joins.len(), 2);
        assert!(q.is_aggregate());
        assert!(q.validate().is_ok());
    }

    #[test]
    fn join_edge_canonical_order() {
        let a = JoinEdge::new(
            "orders",
            "orders.o_custkey",
            "customer",
            "customer.c_custkey",
        );
        let b = JoinEdge::new(
            "customer",
            "customer.c_custkey",
            "orders",
            "orders.o_custkey",
        );
        assert_eq!(a, b);
        assert_eq!(a.col_of("orders").unwrap().as_ref(), "orders.o_custkey");
        assert!(a.touches("customer"));
        assert!(!a.touches("part"));
        assert!(a.col_of("part").is_none());
    }

    #[test]
    fn same_join_graph_detection() {
        let a = q3_like(1);
        let mut b = q3_like(2);
        assert!(a.same_join_graph(&b));
        // Changing the predicate does not change the join graph…
        b.predicates = PredBox::all();
        assert!(a.same_join_graph(&b));
        // …but adding a table does.
        let c = QueryBuilder::new(3)
            .join(
                "customer",
                "customer.c_custkey",
                "orders",
                "orders.o_custkey",
            )
            .build()
            .unwrap();
        assert!(!a.same_join_graph(&c));
    }

    #[test]
    fn validation_catches_disconnected_graph() {
        let r = QueryBuilder::new(1).table("customer").table("part").build();
        assert!(r.is_err(), "two tables with no join edge must fail");
    }

    #[test]
    fn validation_catches_foreign_predicates() {
        let r = QueryBuilder::new(1)
            .table("customer")
            .filter(
                "orders.o_orderdate",
                Interval::all().intersect(&Interval::eq(Value::Date(1))),
            )
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn edges_within_subset() {
        let q = q3_like(1);
        let sub: BTreeSet<Arc<str>> = ["customer", "orders"]
            .iter()
            .map(|s| Arc::from(*s))
            .collect();
        let edges = q.edges_within(&sub);
        assert_eq!(edges.len(), 1);
        assert!(edges[0].touches("customer"));
    }

    #[test]
    fn display_contains_clauses() {
        let q = q3_like(7);
        let s = q.to_string();
        assert!(s.contains("SELECT"));
        assert!(s.contains("GROUP BY"));
        assert!(s.contains("customer.c_age"));
        assert!(s.contains("SUM(lineitem.l_quantity)"));
    }
}
