//! Logical query representation and the predicate algebra behind reuse.
//!
//! HashStash decides *how* a cached hash table can serve a new operator by
//! comparing the predicate that produced the cached table (`C`) with the
//! predicate of the requesting plan (`R`) — paper §3.3. This crate provides
//! the machinery to make those comparisons exact and decidable:
//!
//! * [`interval::Interval`] — one attribute's constraint, with type-aware
//!   canonicalization (discrete types normalize exclusive bounds away).
//! * [`region::PredBox`] / [`region::Region`] — conjunctions of intervals and
//!   finite unions of disjoint boxes, closed under intersection, difference
//!   and union. `R \ C` yields the *delta region* the partial/overlapping
//!   rewrites must scan from base tables.
//! * [`region::ReuseCase`] — the paper's four-way classification (exact,
//!   subsuming, partial, overlapping) computed from region containment.
//! * [`query::QuerySpec`] — SPJ / SPJA queries over the TPC-H schema.
//! * [`joingraph::JoinGraph`] — connected-partition enumeration feeding the
//!   optimizer's top-down search (paper Algorithm 1).
//! * [`fingerprint::HtFingerprint`] — the canonical lineage of a cached hash
//!   table, the unit stored in the recycle graph.

pub mod agg;
pub mod fingerprint;
pub mod interval;
pub mod joingraph;
pub mod query;
pub mod region;

pub use agg::{AggExpr, AggFunc};
pub use fingerprint::{HtFingerprint, HtKind};
pub use interval::Interval;
pub use joingraph::JoinGraph;
pub use query::{JoinEdge, QueryBuilder, QuerySpec};
pub use region::{PredBox, Region, ReuseCase};

#[cfg(test)]
mod proptests;
