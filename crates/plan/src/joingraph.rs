//! Join graphs and connected-partition enumeration for top-down join
//! ordering (paper Algorithm 1).
//!
//! The optimizer's search partitions a join graph `G` into `(G_l, G_r)` such
//! that both sides are connected and at least one edge crosses the cut, then
//! recurses. With TPC-H-style queries (≤ 6 tables) exhaustive enumeration
//! over bitmask subsets is exact and fast.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::query::{JoinEdge, QuerySpec};

/// A join graph over named base tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinGraph {
    /// Sorted table names; a table's index is its bit position in subset
    /// masks.
    tables: Vec<Arc<str>>,
    /// Equi-join edges.
    edges: Vec<JoinEdge>,
}

impl JoinGraph {
    /// Build the join graph of a query.
    pub fn of_query(q: &QuerySpec) -> Self {
        JoinGraph {
            tables: q.tables.iter().cloned().collect(),
            edges: q.joins.clone(),
        }
    }

    /// Construct from parts (used in tests and by the optimizer's recursion).
    pub fn new(tables: Vec<Arc<str>>, edges: Vec<JoinEdge>) -> Self {
        JoinGraph { tables, edges }
    }

    /// Table names in index order.
    pub fn tables(&self) -> &[Arc<str>] {
        &self.tables
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the graph has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// The edges.
    pub fn edges(&self) -> &[JoinEdge] {
        &self.edges
    }

    fn index_of(&self, table: &str) -> Option<usize> {
        self.tables.iter().position(|t| t.as_ref() == table)
    }

    /// Bitmask with every table set.
    fn full_mask(&self) -> u64 {
        if self.tables.len() >= 64 {
            panic!("join graphs beyond 63 tables are unsupported");
        }
        (1u64 << self.tables.len()) - 1
    }

    /// Whether the tables in `mask` form a connected subgraph.
    pub fn is_connected(&self, mask: u64) -> bool {
        if mask == 0 {
            return false;
        }
        let start = mask.trailing_zeros() as usize;
        let mut visited = 1u64 << start;
        let mut frontier = vec![start];
        while let Some(t) = frontier.pop() {
            let tname = self.tables[t].as_ref();
            for e in &self.edges {
                let other = if e.left_table.as_ref() == tname {
                    self.index_of(e.right_table.as_ref())
                } else if e.right_table.as_ref() == tname {
                    self.index_of(e.left_table.as_ref())
                } else {
                    None
                };
                if let Some(o) = other {
                    let bit = 1u64 << o;
                    if mask & bit != 0 && visited & bit == 0 {
                        visited |= bit;
                        frontier.push(o);
                    }
                }
            }
        }
        visited == mask
    }

    /// Whether at least one edge connects `a`-side tables to `b`-side
    /// tables.
    pub fn has_cross_edge(&self, a: u64, b: u64) -> bool {
        self.edges.iter().any(|e| {
            let (Some(l), Some(r)) = (
                self.index_of(e.left_table.as_ref()),
                self.index_of(e.right_table.as_ref()),
            ) else {
                return false;
            };
            let (lb, rb) = (1u64 << l, 1u64 << r);
            (a & lb != 0 && b & rb != 0) || (a & rb != 0 && b & lb != 0)
        })
    }

    /// Enumerate all partitions `(left, right)` of `mask` where both sides
    /// are non-empty, connected, and joined by at least one edge. Each
    /// unordered partition appears once, with the side containing the lowest
    /// set bit first.
    pub fn connected_partitions(&self, mask: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        if mask.count_ones() < 2 {
            return out;
        }
        let lowest = mask & mask.wrapping_neg();
        // Enumerate proper non-empty subsets of `mask` that contain the
        // lowest bit (canonical side), via the standard subset-walk.
        let rest = mask ^ lowest;
        let mut sub = rest;
        loop {
            let left = lowest | sub;
            let right = mask ^ left;
            if right != 0
                && self.is_connected(left)
                && self.is_connected(right)
                && self.has_cross_edge(left, right)
            {
                out.push((left, right));
            }
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & rest;
        }
        out
    }

    /// Table names selected by a mask.
    pub fn tables_of_mask(&self, mask: u64) -> BTreeSet<Arc<str>> {
        self.tables
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1u64 << i) != 0)
            .map(|(_, t)| t.clone())
            .collect()
    }

    /// Mask covering the given table names.
    pub fn mask_of_tables<'a>(&self, tables: impl IntoIterator<Item = &'a str>) -> u64 {
        let mut mask = 0;
        for t in tables {
            if let Some(i) = self.index_of(t) {
                mask |= 1u64 << i;
            }
        }
        mask
    }

    /// Edges with both endpoints inside `mask`.
    pub fn edges_within_mask(&self, mask: u64) -> Vec<JoinEdge> {
        self.edges
            .iter()
            .filter(|e| {
                let (Some(l), Some(r)) = (
                    self.index_of(e.left_table.as_ref()),
                    self.index_of(e.right_table.as_ref()),
                ) else {
                    return false;
                };
                mask & (1u64 << l) != 0 && mask & (1u64 << r) != 0
            })
            .cloned()
            .collect()
    }

    /// Edges crossing between `a` and `b`.
    pub fn cross_edges(&self, a: u64, b: u64) -> Vec<JoinEdge> {
        self.edges
            .iter()
            .filter(|e| {
                let (Some(l), Some(r)) = (
                    self.index_of(e.left_table.as_ref()),
                    self.index_of(e.right_table.as_ref()),
                ) else {
                    return false;
                };
                let (lb, rb) = (1u64 << l, 1u64 << r);
                (a & lb != 0 && b & rb != 0) || (a & rb != 0 && b & lb != 0)
            })
            .cloned()
            .collect()
    }

    /// The all-tables mask.
    pub fn all(&self) -> u64 {
        self.full_mask()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;

    /// customer — orders — lineitem chain.
    fn chain() -> JoinGraph {
        let q = QueryBuilder::new(1)
            .join(
                "customer",
                "customer.c_custkey",
                "orders",
                "orders.o_custkey",
            )
            .join(
                "orders",
                "orders.o_orderkey",
                "lineitem",
                "lineitem.l_orderkey",
            )
            .build()
            .unwrap();
        JoinGraph::of_query(&q)
    }

    /// 5-way: customer—orders—lineitem—part, lineitem—supplier.
    fn five_way() -> JoinGraph {
        let q = QueryBuilder::new(1)
            .join(
                "customer",
                "customer.c_custkey",
                "orders",
                "orders.o_custkey",
            )
            .join(
                "orders",
                "orders.o_orderkey",
                "lineitem",
                "lineitem.l_orderkey",
            )
            .join("lineitem", "lineitem.l_partkey", "part", "part.p_partkey")
            .join(
                "lineitem",
                "lineitem.l_suppkey",
                "supplier",
                "supplier.s_suppkey",
            )
            .build()
            .unwrap();
        JoinGraph::of_query(&q)
    }

    #[test]
    fn connectivity() {
        let g = chain();
        // tables sorted: customer(0), lineitem(1), orders(2)
        let c = g.mask_of_tables(["customer"]);
        let l = g.mask_of_tables(["lineitem"]);
        let o = g.mask_of_tables(["orders"]);
        assert!(g.is_connected(c));
        assert!(g.is_connected(c | o));
        assert!(!g.is_connected(c | l), "customer–lineitem not adjacent");
        assert!(g.is_connected(c | o | l));
        assert!(!g.is_connected(0));
    }

    #[test]
    fn chain_partitions() {
        let g = chain();
        let parts = g.connected_partitions(g.all());
        // A 3-chain A–B–C has exactly 2 connected cuts: {A}|{B,C}, {A,B}|{C}.
        assert_eq!(parts.len(), 2);
        for (a, b) in parts {
            assert!(g.is_connected(a) && g.is_connected(b));
            assert!(g.has_cross_edge(a, b));
            assert_eq!(a | b, g.all());
            assert_eq!(a & b, 0);
        }
    }

    #[test]
    fn five_way_partitions_all_valid() {
        let g = five_way();
        let parts = g.connected_partitions(g.all());
        assert!(!parts.is_empty());
        for (a, b) in &parts {
            assert!(g.is_connected(*a));
            assert!(g.is_connected(*b));
            assert!(g.has_cross_edge(*a, *b));
        }
        // The star around lineitem gives more cuts than the chain.
        assert!(parts.len() >= 4, "got {}", parts.len());
    }

    #[test]
    fn single_table_has_no_partitions() {
        let g = chain();
        assert!(g
            .connected_partitions(g.mask_of_tables(["orders"]))
            .is_empty());
    }

    #[test]
    fn masks_round_trip() {
        let g = chain();
        let m = g.mask_of_tables(["customer", "lineitem"]);
        let names = g.tables_of_mask(m);
        assert!(names.contains("customer"));
        assert!(names.contains("lineitem"));
        assert!(!names.contains("orders"));
    }

    #[test]
    fn edges_within_and_cross() {
        let g = chain();
        let co = g.mask_of_tables(["customer", "orders"]);
        let l = g.mask_of_tables(["lineitem"]);
        assert_eq!(g.edges_within_mask(co).len(), 1);
        assert_eq!(g.cross_edges(co, l).len(), 1);
        assert_eq!(g.edges_within_mask(l).len(), 0);
    }
}
