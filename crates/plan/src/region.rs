//! Predicate boxes, regions (unions of disjoint boxes) and the reuse-case
//! classifier.
//!
//! A **box** is a conjunction of per-attribute intervals — the normal form
//! of the selection predicates in the paper's workloads (zoom/shift/drill
//! interactions mutate range predicates). A **region** is a finite union of
//! pairwise-disjoint boxes; regions arise when a cached hash table absorbs
//! missing tuples under partial reuse (its lineage predicate becomes
//! `C ∪ (R \ C)`).
//!
//! All reuse decisions reduce to region algebra (paper §3.3):
//!
//! | case        | condition                 | rewrite                       |
//! |-------------|---------------------------|-------------------------------|
//! | exact       | `R = C`                   | replace sub-plan by HT        |
//! | subsuming   | `R ⊂ C`                   | post-filter σ_R               |
//! | partial     | `C ⊂ R`                   | add `R \ C` from base tables  |
//! | overlapping | `R ∩ C ≠ ∅`, incomparable | post-filter + add `R \ C`     |

use std::collections::BTreeMap;
use std::sync::Arc;

use hashstash_types::Value;

use crate::interval::Interval;

/// A conjunction of per-attribute intervals. Attributes are qualified
/// (`lineitem.l_shipdate`); an absent attribute is unconstrained.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PredBox {
    intervals: BTreeMap<Arc<str>, Interval>,
}

impl PredBox {
    /// The unconstrained box (`TRUE`).
    pub fn all() -> Self {
        PredBox::default()
    }

    /// Add (AND) a constraint on `attr`. Intersects with any existing
    /// constraint on the same attribute.
    pub fn with(mut self, attr: impl Into<Arc<str>>, interval: Interval) -> Self {
        self.constrain(attr, interval);
        self
    }

    /// In-place version of [`with`](Self::with).
    pub fn constrain(&mut self, attr: impl Into<Arc<str>>, interval: Interval) {
        let attr = attr.into();
        let merged = match self.intervals.get(&attr) {
            Some(existing) => existing.intersect(&interval),
            None => interval,
        };
        if merged.is_all() {
            self.intervals.remove(&attr);
        } else {
            self.intervals.insert(attr, merged);
        }
    }

    /// The constraint on `attr` (unconstrained attributes report `all`).
    pub fn interval(&self, attr: &str) -> Interval {
        self.intervals
            .get(attr)
            .cloned()
            .unwrap_or_else(Interval::all)
    }

    /// Iterate over the explicitly constrained attributes.
    pub fn constrained(&self) -> impl Iterator<Item = (&Arc<str>, &Interval)> {
        self.intervals.iter()
    }

    /// Attribute names with explicit constraints.
    pub fn attrs(&self) -> Vec<Arc<str>> {
        self.intervals.keys().cloned().collect()
    }

    /// Whether the box denotes the empty set.
    pub fn is_empty(&self) -> bool {
        self.intervals.values().any(Interval::is_empty)
    }

    /// Whether the box is unconstrained.
    pub fn is_all(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Whether a row, described as attribute→value bindings, satisfies the
    /// box. Attributes missing from the binding are treated as satisfying
    /// (they carry no constraint relevant to the caller's projection).
    pub fn matches(&self, lookup: impl Fn(&str) -> Option<Value>) -> bool {
        self.intervals.iter().all(|(attr, iv)| match lookup(attr) {
            Some(v) => iv.contains_value(&v),
            None => true,
        })
    }

    /// Conjunction of two boxes.
    pub fn intersect(&self, other: &PredBox) -> PredBox {
        let mut out = self.clone();
        for (attr, iv) in &other.intervals {
            out.constrain(attr.clone(), iv.clone());
        }
        out
    }

    /// Whether `self ⊆ other` (every value combination satisfying `self`
    /// satisfies `other`).
    pub fn is_subset(&self, other: &PredBox) -> bool {
        if self.is_empty() {
            return true;
        }
        other
            .intervals
            .iter()
            .all(|(attr, o_iv)| self.interval(attr).is_subset(o_iv))
    }

    /// Whether the two boxes share at least one point.
    pub fn intersects(&self, other: &PredBox) -> bool {
        !self.is_empty() && !other.is_empty() && !self.intersect(other).is_empty()
    }

    /// `self \ other` as a set of pairwise-disjoint boxes.
    ///
    /// Standard axis-sweep decomposition: for each attribute constrained by
    /// `other`, emit the part of the current residue lying outside `other`'s
    /// interval on that axis, then clamp the residue to the intersection and
    /// continue with the next axis.
    pub fn difference(&self, other: &PredBox) -> Vec<PredBox> {
        if self.is_empty() {
            return Vec::new();
        }
        if !self.intersects(other) {
            return vec![self.clone()];
        }
        let mut pieces = Vec::new();
        let mut residue = self.clone();
        for (attr, c_iv) in &other.intervals {
            let r_iv = residue.interval(attr);
            for outside in r_iv.difference(c_iv) {
                let mut piece = residue.clone();
                piece.intervals.insert(attr.clone(), outside);
                if !piece.is_empty() {
                    pieces.push(piece);
                }
            }
            let clamped = r_iv.intersect(c_iv);
            residue.intervals.insert(attr.clone(), clamped);
        }
        pieces
    }

    /// Restrict the box to attributes belonging to the given table
    /// (attributes are qualified as `table.column`).
    pub fn project_table(&self, table: &str) -> PredBox {
        let prefix = format!("{table}.");
        PredBox {
            intervals: self
                .intervals
                .iter()
                .filter(|(attr, _)| attr.starts_with(&prefix))
                .map(|(a, i)| (a.clone(), i.clone()))
                .collect(),
        }
    }
}

impl std::fmt::Display for PredBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.intervals.is_empty() {
            return write!(f, "TRUE");
        }
        for (i, (attr, iv)) in self.intervals.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "{attr} IN {iv}")?;
        }
        Ok(())
    }
}

/// A finite union of pairwise-disjoint predicate boxes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Region {
    boxes: Vec<PredBox>,
}

impl Region {
    /// The empty region.
    pub fn empty() -> Self {
        Region::default()
    }

    /// The unconstrained region.
    pub fn all() -> Self {
        Region {
            boxes: vec![PredBox::all()],
        }
    }

    /// A region consisting of one box (drops empty boxes).
    pub fn from_box(b: PredBox) -> Self {
        if b.is_empty() {
            Region::empty()
        } else {
            Region { boxes: vec![b] }
        }
    }

    /// The disjoint boxes of the region.
    pub fn boxes(&self) -> &[PredBox] {
        &self.boxes
    }

    /// Whether the region denotes the empty set.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// Whether a row satisfies the region (disjunction over boxes).
    pub fn matches(&self, lookup: impl Fn(&str) -> Option<Value> + Copy) -> bool {
        self.boxes.iter().any(|b| b.matches(lookup))
    }

    /// `self \ other`.
    pub fn difference(&self, other: &Region) -> Region {
        let mut current: Vec<PredBox> = self.boxes.clone();
        for c in &other.boxes {
            let mut next = Vec::new();
            for r in current {
                next.extend(r.difference(c));
            }
            current = next;
            if current.is_empty() {
                break;
            }
        }
        Region { boxes: current }
    }

    /// Whether `self ⊆ other`. Exact: `A ⊆ B ⇔ A \ B = ∅`.
    pub fn is_subset(&self, other: &Region) -> bool {
        self.difference(other).is_empty()
    }

    /// Whether the regions denote the same set.
    pub fn set_eq(&self, other: &Region) -> bool {
        self.is_subset(other) && other.is_subset(self)
    }

    /// Whether the regions share at least one point.
    pub fn intersects(&self, other: &Region) -> bool {
        self.boxes
            .iter()
            .any(|a| other.boxes.iter().any(|b| a.intersects(b)))
    }

    /// `self ∪ other`, preserving the disjointness invariant by storing
    /// `other ∪ (self \ other)`, then coalescing touching boxes so lineage
    /// regions stay compact across long sessions of partial reuses.
    pub fn union(&self, other: &Region) -> Region {
        let mut boxes = other.boxes.clone();
        boxes.extend(self.difference(other).boxes);
        Region { boxes }.coalesced()
    }

    /// Merge pairs of boxes that differ in at most one attribute whose
    /// intervals overlap or touch. Preserves the denoted set and the
    /// disjointness invariant while shrinking the representation (e.g. 64
    /// consecutive zoom/shift deltas collapse back to one box).
    pub fn coalesced(mut self) -> Region {
        loop {
            let n = self.boxes.len();
            let mut merged_any = false;
            'outer: for i in 0..n {
                for j in i + 1..n {
                    if let Some(m) = merge_boxes(&self.boxes[i], &self.boxes[j]) {
                        self.boxes.swap_remove(j);
                        self.boxes[i] = m;
                        merged_any = true;
                        break 'outer;
                    }
                }
            }
            if !merged_any {
                return self;
            }
        }
    }

    /// `self ∩ other` as a region.
    pub fn intersect(&self, other: &Region) -> Region {
        let mut boxes = Vec::new();
        for a in &self.boxes {
            for b in &other.boxes {
                let c = a.intersect(b);
                if !c.is_empty() {
                    boxes.push(c);
                }
            }
        }
        // Boxes of `self` are disjoint and boxes of `other` are disjoint, so
        // the pairwise intersections are disjoint as well.
        Region { boxes }
    }

    /// All attributes constrained anywhere in the region.
    pub fn attrs(&self) -> Vec<Arc<str>> {
        let mut attrs: Vec<Arc<str>> = self.boxes.iter().flat_map(|b| b.attrs()).collect();
        attrs.sort();
        attrs.dedup();
        attrs
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.boxes.is_empty() {
            return write!(f, "FALSE");
        }
        for (i, b) in self.boxes.iter().enumerate() {
            if i > 0 {
                write!(f, " OR ")?;
            }
            write!(f, "({b})")?;
        }
        Ok(())
    }
}

/// Merge two boxes when they differ in at most one attribute and the two
/// intervals on that attribute overlap or touch.
fn merge_boxes(a: &PredBox, b: &PredBox) -> Option<PredBox> {
    // Collect the attributes constrained by either box.
    let mut attrs: Vec<Arc<str>> = a.attrs();
    for x in b.attrs() {
        if !attrs.contains(&x) {
            attrs.push(x);
        }
    }
    let mut differing: Option<Arc<str>> = None;
    for attr in &attrs {
        if a.interval(attr) != b.interval(attr) {
            if differing.is_some() {
                return None; // differs in 2+ attributes
            }
            differing = Some(attr.clone());
        }
    }
    match differing {
        None => Some(a.clone()), // identical boxes
        Some(attr) => {
            let merged = a.interval(&attr).merge_touching(&b.interval(&attr))?;
            let mut out = a.clone();
            // Rebuild with the merged interval (replace, not intersect).
            let mut intervals: BTreeMap<Arc<str>, Interval> = BTreeMap::new();
            for (k, v) in out.constrained() {
                intervals.insert(k.clone(), v.clone());
            }
            intervals.insert(attr, merged);
            out = PredBox::all();
            for (k, v) in intervals {
                if !v.is_all() {
                    out = out.with(k, v);
                }
            }
            Some(out)
        }
    }
}

/// The paper's four reuse cases, plus `Disjoint` for "no usable overlap".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReuseCase {
    /// `R = C`: replace the sub-plan with the cached hash table.
    Exact,
    /// `R ⊂ C`: reuse with a post-filter removing false positives.
    Subsuming,
    /// `C ⊂ R`: reuse and add the missing tuples (`R \ C`) from base tables.
    Partial,
    /// Overlap without containment: post-filter *and* add missing tuples.
    Overlapping,
    /// No common tuples — reuse cannot help.
    Disjoint,
}

impl ReuseCase {
    /// Classify how a cached region `c` can serve a requested region `r`.
    pub fn classify(r: &Region, c: &Region) -> ReuseCase {
        let r_in_c = r.is_subset(c);
        let c_in_r = c.is_subset(r);
        match (r_in_c, c_in_r) {
            (true, true) => ReuseCase::Exact,
            (true, false) => ReuseCase::Subsuming,
            (false, true) => ReuseCase::Partial,
            (false, false) => {
                if r.intersects(c) {
                    ReuseCase::Overlapping
                } else {
                    ReuseCase::Disjoint
                }
            }
        }
    }

    /// Whether this case requires a post-filter on probe/output
    /// (false positives present in the cached table).
    pub fn needs_post_filter(self) -> bool {
        matches!(self, ReuseCase::Subsuming | ReuseCase::Overlapping)
    }

    /// Whether this case requires adding missing tuples from base tables.
    pub fn needs_delta(self) -> bool {
        matches!(self, ReuseCase::Partial | ReuseCase::Overlapping)
    }
}

impl std::fmt::Display for ReuseCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ReuseCase::Exact => "exact",
            ReuseCase::Subsuming => "subsuming",
            ReuseCase::Partial => "partial",
            ReuseCase::Overlapping => "overlapping",
            ReuseCase::Disjoint => "disjoint",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn date_box(attr: &str, lo: i32, hi: i32) -> PredBox {
        PredBox::all().with(attr, Interval::closed(Value::Date(lo), Value::Date(hi)))
    }

    #[test]
    fn constrain_intersects_existing() {
        let b = PredBox::all()
            .with("t.a", Interval::closed(Value::Int(0), Value::Int(10)))
            .with("t.a", Interval::closed(Value::Int(5), Value::Int(20)));
        assert_eq!(
            b.interval("t.a"),
            Interval::closed(Value::Int(5), Value::Int(10))
        );
    }

    #[test]
    fn box_subset_and_intersect() {
        let wide = date_box("l.d", 0, 100);
        let narrow = date_box("l.d", 10, 20);
        assert!(narrow.is_subset(&wide));
        assert!(!wide.is_subset(&narrow));
        assert!(wide.intersects(&narrow));
        let disjoint = date_box("l.d", 200, 300);
        assert!(!wide.intersects(&disjoint));
        // Unconstrained attr is NOT a subset of a constrained one.
        let other_attr = date_box("l.x", 0, 10);
        assert!(!wide.is_subset(&other_attr));
        assert!(
            wide.intersects(&other_attr),
            "different attrs still overlap"
        );
    }

    #[test]
    fn box_difference_single_attr() {
        let r = date_box("l.d", 0, 100);
        let c = date_box("l.d", 30, 60);
        let delta = r.difference(&c);
        assert_eq!(delta.len(), 2);
        assert_eq!(
            delta[0].interval("l.d"),
            Interval::closed(Value::Date(0), Value::Date(29))
        );
        assert_eq!(
            delta[1].interval("l.d"),
            Interval::closed(Value::Date(61), Value::Date(100))
        );
    }

    #[test]
    fn box_difference_two_attrs_disjoint_pieces() {
        let r = date_box("t.x", 0, 9).intersect(&date_box("t.y", 0, 9));
        let c = date_box("t.x", 5, 9).intersect(&date_box("t.y", 5, 9));
        let delta = r.difference(&c);
        // Pieces must be pairwise disjoint and tile r \ c.
        for i in 0..delta.len() {
            for j in i + 1..delta.len() {
                assert!(!delta[i].intersects(&delta[j]), "pieces overlap");
            }
        }
        // Count lattice points: |r| = 100, |c∩r| = 25 ⇒ delta covers 75.
        let count = |b: &PredBox| -> usize {
            let mut n = 0;
            for x in 0..10 {
                for y in 0..10 {
                    let lookup = |attr: &str| -> Option<Value> {
                        match attr {
                            "t.x" => Some(Value::Date(x)),
                            "t.y" => Some(Value::Date(y)),
                            _ => None,
                        }
                    };
                    if b.matches(lookup) {
                        n += 1;
                    }
                }
            }
            n
        };
        let total: usize = delta.iter().map(count).sum();
        assert_eq!(total, 75);
    }

    #[test]
    fn region_subset_union_difference() {
        let r1 = Region::from_box(date_box("l.d", 0, 50));
        let r2 = Region::from_box(date_box("l.d", 0, 100));
        assert!(r1.is_subset(&r2));
        assert!(!r2.is_subset(&r1));
        let u = r1.union(&r2);
        assert!(u.set_eq(&r2));
        let d = r2.difference(&r1);
        assert!(d.set_eq(&Region::from_box(date_box("l.d", 51, 100))));
    }

    #[test]
    fn region_union_keeps_disjoint_boxes() {
        let a = Region::from_box(date_box("l.d", 0, 50));
        let b = Region::from_box(date_box("l.d", 30, 80));
        let u = a.union(&b);
        for i in 0..u.boxes().len() {
            for j in i + 1..u.boxes().len() {
                assert!(!u.boxes()[i].intersects(&u.boxes()[j]));
            }
        }
        assert!(u.set_eq(&Region::from_box(date_box("l.d", 0, 80))));
    }

    #[test]
    fn reuse_case_classification() {
        let r = Region::from_box(date_box("l.d", 10, 20));
        let exact = Region::from_box(date_box("l.d", 10, 20));
        let subsuming = Region::from_box(date_box("l.d", 0, 100));
        let partial = Region::from_box(date_box("l.d", 12, 15));
        let overlapping = Region::from_box(date_box("l.d", 15, 40));
        let disjoint = Region::from_box(date_box("l.d", 50, 60));
        assert_eq!(ReuseCase::classify(&r, &exact), ReuseCase::Exact);
        assert_eq!(ReuseCase::classify(&r, &subsuming), ReuseCase::Subsuming);
        assert_eq!(ReuseCase::classify(&r, &partial), ReuseCase::Partial);
        assert_eq!(
            ReuseCase::classify(&r, &overlapping),
            ReuseCase::Overlapping
        );
        assert_eq!(ReuseCase::classify(&r, &disjoint), ReuseCase::Disjoint);
    }

    #[test]
    fn reuse_case_flags() {
        assert!(!ReuseCase::Exact.needs_post_filter());
        assert!(!ReuseCase::Exact.needs_delta());
        assert!(ReuseCase::Subsuming.needs_post_filter());
        assert!(!ReuseCase::Subsuming.needs_delta());
        assert!(!ReuseCase::Partial.needs_post_filter());
        assert!(ReuseCase::Partial.needs_delta());
        assert!(ReuseCase::Overlapping.needs_post_filter());
        assert!(ReuseCase::Overlapping.needs_delta());
    }

    #[test]
    fn paper_figure2_scenario() {
        // Q1 caches lineitems shipped after 2015-02-01; Q2 wants after
        // 2015-01-01 ⇒ partial reuse with a one-month delta.
        let feb = hashstash_types::date::parse_date("2015-02-01").unwrap();
        let jan = hashstash_types::date::parse_date("2015-01-01").unwrap();
        let c = Region::from_box(PredBox::all().with(
            "lineitem.l_shipdate",
            Interval::greater_than(Value::Date(feb)),
        ));
        let r = Region::from_box(PredBox::all().with(
            "lineitem.l_shipdate",
            Interval::greater_than(Value::Date(jan)),
        ));
        assert_eq!(ReuseCase::classify(&r, &c), ReuseCase::Partial);
        let delta = r.difference(&c);
        assert_eq!(delta.boxes().len(), 1);
        let iv = delta.boxes()[0].interval("lineitem.l_shipdate");
        assert_eq!(iv, Interval::closed(Value::Date(jan + 1), Value::Date(feb)));
    }

    #[test]
    fn project_table_filters_attrs() {
        let b =
            date_box("lineitem.l_shipdate", 0, 10).intersect(&date_box("orders.o_orderdate", 5, 6));
        let p = b.project_table("lineitem");
        assert_eq!(p.attrs().len(), 1);
        assert_eq!(p.attrs()[0].as_ref(), "lineitem.l_shipdate");
    }

    #[test]
    fn region_matches_rows() {
        let r = Region::from_box(date_box("t.d", 0, 10))
            .union(&Region::from_box(date_box("t.d", 20, 30)));
        let probe = |d: i32| r.matches(|attr| (attr == "t.d").then_some(Value::Date(d)));
        assert!(probe(5));
        assert!(!probe(15));
        assert!(probe(25));
    }

    #[test]
    fn empty_and_all_regions() {
        assert!(Region::empty().is_empty());
        assert!(Region::all().is_subset(&Region::all()));
        assert!(Region::empty().is_subset(&Region::empty()));
        assert!(Region::empty().is_subset(&Region::all()));
        assert!(!Region::all().is_subset(&Region::empty()));
        assert!(Region::from_box(date_box("x", 5, 4)).is_empty());
    }

    #[test]
    fn display_forms() {
        assert_eq!(PredBox::all().to_string(), "TRUE");
        assert_eq!(Region::empty().to_string(), "FALSE");
        let b = date_box("t.d", 0, 1);
        assert!(b.to_string().contains("t.d IN"));
    }
}
