//! Aggregate functions and expressions.

use std::fmt;
use std::sync::Arc;

/// Aggregate functions supported by the hash aggregate operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Sum,
    Count,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    /// Whether the function is *additive* — partial states over disjoint
    /// inputs combine into the state over the union. Additivity is what
    /// allows an exact-reuse rewrite with *fewer* group-by attributes (paper
    /// §3.3: a post-aggregation re-groups the cached table) and what makes
    /// partial reuse of aggregation hash tables sound.
    pub fn is_additive(self) -> bool {
        match self {
            AggFunc::Sum | AggFunc::Count | AggFunc::Min | AggFunc::Max => true,
            AggFunc::Avg => false,
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Sum => "SUM",
            AggFunc::Count => "COUNT",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        };
        f.write_str(s)
    }
}

/// An aggregate over a (qualified) attribute, e.g. `SUM(lineitem.l_quantity)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggExpr {
    pub func: AggFunc,
    /// Qualified input attribute. `COUNT` ignores it but keeps one for
    /// display (`COUNT(lineitem.l_orderkey)`).
    pub attr: Arc<str>,
}

impl AggExpr {
    /// Construct an aggregate expression.
    pub fn new(func: AggFunc, attr: impl Into<Arc<str>>) -> Self {
        AggExpr {
            func,
            attr: attr.into(),
        }
    }

    /// The benefit-oriented `AVG → (SUM, COUNT)` rewrite (paper §3.4).
    ///
    /// Returns the replacement list for this expression: `AVG(a)` becomes
    /// `[SUM(a), COUNT(a)]`; other functions are returned unchanged. The
    /// caller remembers the mapping to reconstruct the average at output.
    pub fn rewrite_avg(&self) -> Vec<AggExpr> {
        match self.func {
            AggFunc::Avg => vec![
                AggExpr::new(AggFunc::Sum, self.attr.clone()),
                AggExpr::new(AggFunc::Count, self.attr.clone()),
            ],
            _ => vec![self.clone()],
        }
    }
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.func, self.attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn additivity() {
        assert!(AggFunc::Sum.is_additive());
        assert!(AggFunc::Count.is_additive());
        assert!(AggFunc::Min.is_additive());
        assert!(AggFunc::Max.is_additive());
        assert!(!AggFunc::Avg.is_additive());
    }

    #[test]
    fn avg_rewrite() {
        let avg = AggExpr::new(AggFunc::Avg, "l.q");
        let rewritten = avg.rewrite_avg();
        assert_eq!(rewritten.len(), 2);
        assert_eq!(rewritten[0].func, AggFunc::Sum);
        assert_eq!(rewritten[1].func, AggFunc::Count);
        assert!(rewritten.iter().all(|a| a.attr.as_ref() == "l.q"));
        let sum = AggExpr::new(AggFunc::Sum, "l.q");
        assert_eq!(sum.rewrite_avg(), vec![sum]);
    }

    #[test]
    fn display() {
        assert_eq!(AggExpr::new(AggFunc::Sum, "l.q").to_string(), "SUM(l.q)");
        assert_eq!(AggFunc::Avg.to_string(), "AVG");
    }
}
