//! Canonical lineage of a cached hash table.
//!
//! The Hash Table Manager "stores pointers to cached hash tables, as well as
//! lineage information about how each one of them was created" (paper §2.2).
//! An [`HtFingerprint`] is that lineage in normal form: which base tables and
//! join edges produced the table's contents, which predicate region the
//! contents satisfy, what the hash key is, and which attributes each stored
//! tuple carries. Matching a requesting sub-plan against a candidate reduces
//! to structural equality on the shape plus region algebra on the predicates
//! (see `hashstash-opt::matching`).

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::agg::AggExpr;
use crate::query::JoinEdge;
use crate::region::Region;

/// What kind of operator materialized the hash table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HtKind {
    /// Build side of a hash join: multi-map keyed by join key, tuples as
    /// payloads.
    JoinBuild,
    /// Hash aggregate: one entry per group key holding aggregate states.
    Aggregate,
    /// Shared hash aggregate grouping phase: one entry per *input tuple*
    /// grouped by key (raw tuples, not aggregate states) — this is why an
    /// SRHA-built table can serve any aggregate function (paper §4.1).
    SharedGroup,
}

impl std::fmt::Display for HtKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            HtKind::JoinBuild => "join-build",
            HtKind::Aggregate => "aggregate",
            HtKind::SharedGroup => "shared-group",
        };
        f.write_str(s)
    }
}

/// Canonical description of the sub-plan that produced a hash table.
#[derive(Debug, Clone, PartialEq)]
pub struct HtFingerprint {
    /// Operator kind that materialized the table.
    pub kind: HtKind,
    /// Base tables feeding the build/grouping input.
    pub tables: BTreeSet<Arc<str>>,
    /// Join edges applied within the sub-plan (sorted canonical form).
    pub edges: Vec<JoinEdge>,
    /// Predicate region satisfied by the stored tuples. Grows when partial
    /// reuse adds missing tuples.
    pub region: Region,
    /// Hash key attributes (join key columns or group-by columns).
    pub key_attrs: Vec<Arc<str>>,
    /// Attributes stored in each tuple's payload. For aggregate tables these
    /// are the group-by attributes (aggregate states are implicit).
    pub payload_attrs: Vec<Arc<str>>,
    /// Aggregate expressions (post `AVG → SUM,COUNT` rewrite) for
    /// `Aggregate` tables; empty otherwise.
    pub aggregates: Vec<AggExpr>,
    /// Whether tuples carry query-id tags (required for shared-plan reuse).
    pub tagged: bool,
}

impl HtFingerprint {
    /// Normalize: sort edges so equality is representation-independent.
    pub fn normalized(mut self) -> Self {
        self.edges.sort();
        self
    }

    /// Whether this table was built over the same *shape* (tables, joins,
    /// keys) as the requesting fingerprint — the precondition for any reuse,
    /// before predicate regions are compared.
    pub fn same_shape(&self, other: &HtFingerprint) -> bool {
        self.kind == other.kind
            && self.tables == other.tables
            && {
                let mut a = self.edges.clone();
                let mut b = other.edges.clone();
                a.sort();
                b.sort();
                a == b
            }
            && self.key_attrs == other.key_attrs
    }

    /// Whether two fingerprints describe the *same* lineage: same shape,
    /// same payload and aggregates, same tagging, and set-equal predicate
    /// regions. Base tables are immutable, so same lineage implies
    /// identical table content — the caches use this to deduplicate
    /// re-publishes (e.g. a re-planned retry re-running an operator whose
    /// first attempt's publish survived the abort).
    pub fn same_lineage(&self, other: &HtFingerprint) -> bool {
        self.same_shape(other)
            && self.payload_attrs == other.payload_attrs
            && self.aggregates == other.aggregates
            && self.tagged == other.tagged
            && self.region.set_eq(&other.region)
    }

    /// Whether every attribute in `needed` is available in this table's
    /// payload (for post-filtering and projection). The paper: "If the hash
    /// table does not contain the attributes needed to test post, it does
    /// not qualify for reuse."
    pub fn payload_covers<'a>(&self, needed: impl IntoIterator<Item = &'a str>) -> bool {
        needed
            .into_iter()
            .all(|n| self.payload_attrs.iter().any(|p| p.as_ref() == n))
    }

    /// Whether this aggregate table provides all requested aggregate
    /// expressions. Shared-group tables store raw tuples and can recompute
    /// anything.
    pub fn provides_aggregates(&self, requested: &[AggExpr]) -> bool {
        match self.kind {
            HtKind::SharedGroup => true,
            HtKind::Aggregate => requested.iter().all(|r| self.aggregates.contains(r)),
            HtKind::JoinBuild => requested.is_empty(),
        }
    }

    /// Short human-readable summary used in experiment output.
    pub fn summary(&self) -> String {
        let tables: Vec<&str> = self.tables.iter().map(|t| t.as_ref()).collect();
        format!(
            "{}[{}] key=({})",
            self.kind,
            tables.join(","),
            self.key_attrs
                .iter()
                .map(|k| k.as_ref())
                .collect::<Vec<_>>()
                .join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFunc;
    use crate::interval::Interval;
    use crate::region::PredBox;
    use hashstash_types::Value;

    fn fp(kind: HtKind, lo: i32, hi: i32) -> HtFingerprint {
        HtFingerprint {
            kind,
            tables: ["customer", "orders"]
                .iter()
                .map(|s| Arc::from(*s))
                .collect(),
            edges: vec![JoinEdge::new(
                "customer",
                "customer.c_custkey",
                "orders",
                "orders.o_custkey",
            )],
            region: Region::from_box(PredBox::all().with(
                "customer.c_age",
                Interval::closed(Value::Int(lo as i64), Value::Int(hi as i64)),
            )),
            key_attrs: vec![Arc::from("customer.c_custkey")],
            payload_attrs: vec![Arc::from("customer.c_age"), Arc::from("customer.c_acctbal")],
            aggregates: Vec::new(),
            tagged: false,
        }
        .normalized()
    }

    #[test]
    fn same_shape_ignores_region() {
        let a = fp(HtKind::JoinBuild, 20, 30);
        let b = fp(HtKind::JoinBuild, 40, 90);
        assert!(a.same_shape(&b));
        let c = fp(HtKind::Aggregate, 20, 30);
        assert!(!a.same_shape(&c), "different kinds never match");
    }

    #[test]
    fn shape_differs_on_keys() {
        let a = fp(HtKind::JoinBuild, 0, 10);
        let mut b = fp(HtKind::JoinBuild, 0, 10);
        b.key_attrs = vec![Arc::from("orders.o_orderkey")];
        assert!(!a.same_shape(&b));
    }

    #[test]
    fn payload_coverage() {
        let a = fp(HtKind::JoinBuild, 0, 10);
        assert!(a.payload_covers(["customer.c_age"]));
        assert!(a.payload_covers(["customer.c_age", "customer.c_acctbal"]));
        assert!(!a.payload_covers(["customer.c_mktsegment"]));
        assert!(a.payload_covers(std::iter::empty::<&str>()));
    }

    #[test]
    fn aggregate_provision() {
        let mut agg = fp(HtKind::Aggregate, 0, 10);
        agg.aggregates = vec![
            AggExpr::new(AggFunc::Sum, "lineitem.l_quantity"),
            AggExpr::new(AggFunc::Count, "lineitem.l_quantity"),
        ];
        assert!(agg.provides_aggregates(&[AggExpr::new(AggFunc::Sum, "lineitem.l_quantity")]));
        assert!(!agg.provides_aggregates(&[AggExpr::new(AggFunc::Min, "lineitem.l_quantity")]));
        let shared = HtFingerprint {
            kind: HtKind::SharedGroup,
            ..agg.clone()
        };
        assert!(
            shared.provides_aggregates(&[AggExpr::new(AggFunc::Min, "lineitem.l_quantity")]),
            "shared-group tables store raw tuples and recompute any aggregate"
        );
    }

    #[test]
    fn summary_is_readable() {
        let s = fp(HtKind::JoinBuild, 0, 10).summary();
        assert!(s.contains("join-build"));
        assert!(s.contains("customer"));
        assert!(s.contains("customer.c_custkey"));
    }
}
