//! End-to-end serving tests: a real `Server` on a loopback socket, real
//! TCP clients, the full HELLO → QUERY → STATS → QUIT life-cycle.

use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::sync::Arc;

use hashstash::Database;
use hashstash_server::protocol::{read_text, write_frame};
use hashstash_server::{Server, ServerConfig, TenantSpec};
use hashstash_storage::tpch::{generate, TpchConfig};

struct Client {
    r: BufReader<TcpStream>,
    w: BufWriter<TcpStream>,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        Client {
            r: BufReader::new(stream.try_clone().expect("clone")),
            w: BufWriter::new(stream),
        }
    }

    fn send(&mut self, line: &str) -> String {
        write_frame(&mut self.w, line.as_bytes()).expect("send");
        read_text(&mut self.r).expect("recv").expect("open")
    }
}

fn serving_db() -> Arc<Database> {
    Database::builder(generate(TpchConfig::new(0.002, 77))).build()
}

fn two_tenant_server(db: &Arc<Database>) -> Server {
    Server::start(
        Arc::clone(db),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            tenants: vec![
                TenantSpec {
                    name: "alpha".into(),
                    token: "a-secret".into(),
                    floor_bytes: 1 << 20,
                },
                TenantSpec {
                    name: "beta".into(),
                    token: "b-secret".into(),
                    floor_bytes: 0,
                },
            ],
        },
    )
    .expect("bind loopback")
}

#[test]
fn authentication_gates_the_session() {
    let db = serving_db();
    let server = two_tenant_server(&db);

    let mut c = Client::connect(&server);
    // Verbs before HELLO are rejected (except PING/QUIT).
    assert!(c.send("QUERY SELECT * FROM customer").starts_with("ERR"));
    assert_eq!(c.send("PING"), "OK pong");
    // Wrong token and unknown tenant get the same opaque answer.
    let bad_token = c.send("HELLO alpha wrong");
    let bad_name = c.send("HELLO nobody a-secret");
    assert_eq!(bad_token, "ERR authentication failed");
    assert_eq!(bad_name, bad_token);
    // Correct credentials open the session; re-HELLO is an error.
    assert_eq!(c.send("HELLO alpha a-secret"), "OK tenant=alpha");
    assert!(c.send("HELLO alpha a-secret").starts_with("ERR already"));
    assert_eq!(c.send("QUIT"), "OK bye");
}

#[test]
fn queries_execute_and_errors_carry_snippets() {
    let db = serving_db();
    let server = two_tenant_server(&db);

    let mut c = Client::connect(&server);
    assert_eq!(c.send("HELLO beta b-secret"), "OK tenant=beta");

    // A real aggregate over generated TPC-H data.
    let reply = c.send(
        "QUERY SELECT c_age, SUM(l_quantity) FROM customer \
         JOIN orders ON customer.c_custkey = orders.o_custkey \
         JOIN lineitem ON orders.o_orderkey = lineitem.l_orderkey \
         GROUP BY c_age",
    );
    assert!(reply.starts_with("OK rows="), "got: {reply}");
    let rows = reply.lines().count() - 1;
    assert!(rows > 0, "aggregate returned no groups");

    // Parse errors come back with the caret snippet, connection stays up.
    let err = c.send("QUERY SELECT * FROM no_such_table");
    assert!(err.starts_with("ERR unknown table"), "got: {err}");
    assert!(err.contains("^^^^"), "no caret snippet in: {err}");
    assert_eq!(c.send("PING"), "OK pong");

    // Unknown verbs are survivable too.
    assert!(c.send("EXPLAIN foo").starts_with("ERR unknown verb"));
}

#[test]
fn stats_are_per_tenant_and_reuse_is_visible() {
    let db = serving_db();
    let server = two_tenant_server(&db);

    let q = "QUERY SELECT c_age, COUNT(c_custkey) FROM customer GROUP BY c_age";
    let mut alpha = Client::connect(&server);
    assert_eq!(alpha.send("HELLO alpha a-secret"), "OK tenant=alpha");
    let first = alpha.send(q);
    assert!(first.starts_with("OK"), "got: {first}");

    // A second client (other tenant) runs the same query and should reuse
    // alpha's published hash table — shared cache, per-tenant accounting.
    let mut beta = Client::connect(&server);
    assert_eq!(beta.send("HELLO beta b-secret"), "OK tenant=beta");
    let second = beta.send(q);
    assert!(second.starts_with("OK"), "got: {second}");

    let stats = beta.send("STATS");
    assert!(stats.starts_with("OK"), "got: {stats}");
    let lines: Vec<&str> = stats.lines().skip(1).collect();
    // alpha, beta, global.
    assert_eq!(lines.len(), 3, "got: {stats}");
    assert!(lines[0].contains("\"tenant\":\"alpha\""));
    assert!(lines[1].contains("\"tenant\":\"beta\""));
    assert!(lines[1].contains("\"you\":true"));
    assert!(lines[2].contains("\"tenant\":\"*\""));
    // alpha owns publishes; the reuse by beta is credited to the owner.
    let alpha_pubs: u64 = field(lines[0], "publishes");
    assert!(alpha_pubs > 0, "alpha published nothing: {}", lines[0]);
    let global_pubs: u64 = field(lines[2], "publishes");
    let beta_pubs: u64 = field(lines[1], "publishes");
    assert!(
        alpha_pubs + beta_pubs <= global_pubs,
        "tenant publishes exceed global"
    );
}

/// Pull `"name":<int>` out of a one-line JSON object.
fn field(line: &str, name: &str) -> u64 {
    let key = format!("\"{name}\":");
    let at = line
        .find(&key)
        .unwrap_or_else(|| panic!("{name} in {line}"));
    line[at + key.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("bad {name} in {line}"))
}

#[test]
fn shutdown_is_clean_and_idempotent() {
    let db = serving_db();
    let mut server = two_tenant_server(&db);
    let mut c = Client::connect(&server);
    assert_eq!(c.send("HELLO alpha a-secret"), "OK tenant=alpha");
    server.shutdown();
    server.shutdown();
    // New connections are refused or dropped after shutdown; either way
    // no further frames are served.
    drop(server);
}
