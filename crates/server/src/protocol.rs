//! The wire protocol: length-prefixed UTF-8 frames over a byte stream.
//!
//! Each frame is a 4-byte big-endian length followed by that many bytes of
//! payload. Requests and responses are single frames; the first
//! whitespace-separated word of a request is the verb:
//!
//! | request                    | response                                  |
//! |----------------------------|-------------------------------------------|
//! | `HELLO <tenant> <token>`   | `OK tenant=<name>` or `ERR <why>`          |
//! | `QUERY <sql>`              | `OK rows=<n> wall_us=<µs> reused=<k>` then one tab-separated line per row |
//! | `STATS`                    | `OK` then one line per tenant (JSON object) |
//! | `PING`                     | `OK pong`                                  |
//! | `QUIT`                     | `OK bye`, then the server closes           |
//!
//! Errors never tear down the connection (except `QUIT` and I/O failures):
//! a client that sends a bad query gets an `ERR` frame — with the parser's
//! caret snippet inlined — and can try again. Frames above [`MAX_FRAME`]
//! are rejected to bound memory per connection.

use std::io::{self, Read, Write};

/// Upper bound on a single frame, requests and responses alike (16 MiB —
/// generous for result sets at bench scale, small enough to not matter).
pub const MAX_FRAME: usize = 16 << 20;

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame too large",
        ));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. `Ok(None)` means the peer closed the stream cleanly
/// (EOF before any length byte); a mid-frame EOF is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < len.len() {
        match r.read(&mut len[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let n = u32::from_be_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {n} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

/// Convenience for text protocols: read a frame and decode as UTF-8.
pub fn read_text(r: &mut impl Read) -> io::Result<Option<String>> {
    match read_frame(r)? {
        None => Ok(None),
        Some(bytes) => String::from_utf8(bytes)
            .map(Some)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"HELLO t s").unwrap();
        write_frame(&mut buf, "höi".as_bytes()).unwrap();
        let mut c = Cursor::new(buf);
        assert_eq!(read_text(&mut c).unwrap().unwrap(), "HELLO t s");
        assert_eq!(read_text(&mut c).unwrap().unwrap(), "höi");
        assert!(read_text(&mut c).unwrap().is_none());
    }

    #[test]
    fn oversized_and_truncated_frames_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        assert!(read_frame(&mut Cursor::new(buf)).is_err());

        let mut buf = Vec::new();
        buf.extend_from_slice(&8u32.to_be_bytes());
        buf.extend_from_slice(b"shor");
        assert!(read_frame(&mut Cursor::new(buf)).is_err());

        // EOF mid-header is an error too, not a clean close.
        assert!(read_frame(&mut Cursor::new(vec![0u8, 0])).is_err());
    }
}
