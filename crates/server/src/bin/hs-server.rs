//! `hs-server`: stand-alone serving front end over a generated TPC-H
//! database.
//!
//! ```text
//! hs-server [--addr HOST:PORT] [--sf F] [--seed N] [--gc-budget BYTES]
//!           [--data-dir PATH] [--tenant NAME:TOKEN[:FLOOR_BYTES]]...
//! ```
//!
//! With no `--tenant` flags a single `default` tenant with token
//! `default` and no floor is configured. The process serves until killed;
//! engines configured with `--data-dir` flush durable state when the
//! database drops on exit.
//!
//! Talk to it with anything that can frame bytes, e.g. the workspace's
//! `exp12_serving` bench, or interactively:
//!
//! ```text
//! HELLO default default
//! QUERY SELECT c_age, SUM(l_quantity) FROM customer
//!       JOIN orders ON customer.c_custkey = orders.o_custkey
//!       JOIN lineitem ON orders.o_orderkey = lineitem.l_orderkey
//!       GROUP BY c_age
//! STATS
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use hashstash::Database;
use hashstash_server::{Server, ServerConfig, TenantSpec};
use hashstash_storage::tpch::{generate, TpchConfig};

struct Args {
    addr: String,
    sf: f64,
    seed: u64,
    gc_budget: Option<usize>,
    data_dir: Option<String>,
    tenants: Vec<TenantSpec>,
}

fn parse_tenant(spec: &str) -> Result<TenantSpec, String> {
    let mut parts = spec.splitn(3, ':');
    let name = parts.next().unwrap_or("").to_string();
    let token = parts.next().unwrap_or("").to_string();
    if name.is_empty() || token.is_empty() {
        return Err(format!(
            "--tenant wants NAME:TOKEN[:FLOOR_BYTES], got `{spec}`"
        ));
    }
    let floor_bytes = match parts.next() {
        None => 0,
        Some(f) => f
            .parse::<usize>()
            .map_err(|_| format!("bad floor in --tenant `{spec}`: `{f}` is not a byte count"))?,
    };
    Ok(TenantSpec {
        name,
        token,
        floor_bytes,
    })
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        sf: 0.01,
        seed: 42,
        gc_budget: None,
        data_dir: None,
        tenants: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value ({what})"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("HOST:PORT")?,
            "--sf" => {
                args.sf = value("scale factor")?
                    .parse()
                    .map_err(|e| format!("bad --sf: {e}"))?
            }
            "--seed" => {
                args.seed = value("seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--gc-budget" => {
                args.gc_budget = Some(
                    value("bytes")?
                        .parse()
                        .map_err(|e| format!("bad --gc-budget: {e}"))?,
                )
            }
            "--data-dir" => args.data_dir = Some(value("path")?),
            "--tenant" => args
                .tenants
                .push(parse_tenant(&value("NAME:TOKEN[:FLOOR]")?)?),
            "--help" | "-h" => {
                return Err("usage: hs-server [--addr HOST:PORT] [--sf F] [--seed N] \
                     [--gc-budget BYTES] [--data-dir PATH] [--tenant NAME:TOKEN[:FLOOR_BYTES]]..."
                    .to_string())
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    if args.tenants.is_empty() {
        args.tenants.push(TenantSpec {
            name: "default".to_string(),
            token: "default".to_string(),
            floor_bytes: 0,
        });
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "hs-server: generating TPC-H sf={} seed={}…",
        args.sf, args.seed
    );
    let catalog = generate(TpchConfig::new(args.sf, args.seed));
    let mut b = Database::builder(catalog);
    if let Some(budget) = args.gc_budget {
        b = b.gc_budget(budget);
    }
    if let Some(dir) = &args.data_dir {
        b = b.data_dir(dir);
    }
    let db = b.build();

    let server = match Server::start(
        Arc::clone(&db),
        ServerConfig {
            addr: args.addr.clone(),
            tenants: args.tenants.clone(),
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hs-server: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "hs-server: listening on {} with {} tenant(s)",
        server.local_addr(),
        args.tenants.len()
    );

    // Serve until killed. The accept thread owns the listener; parking the
    // main thread keeps `db` (and therefore durable flush on drop) alive.
    loop {
        std::thread::park();
    }
}
