//! The HashStash serving front end.
//!
//! [`Server`] binds a TCP listener and speaks a length-prefixed text
//! protocol (see [`protocol`]): clients authenticate as a configured
//! tenant (`HELLO <name> <token>`), then send SQL over `QUERY …` — parsed
//! by [`hashstash_sql`], executed through a per-connection engine
//! [`hashstash::Session`] on the shared worker pool. All connections share
//! one [`hashstash::Database`], so hash tables published by one query are
//! reused across clients, while per-tenant budget floors
//! ([`TenantSpec::floor_bytes`]) keep one tenant's churn from evicting
//! another's working set below its guarantee. The `STATS` verb exposes
//! per-tenant [`hashstash::cache::CacheStats`] for exactly that contract.
//!
//! The crate is panic-free by lint (tidy `no-panic-paths`): a serving
//! thread that panicked would silently drop its connection, so every
//! failure path — protocol, parse, execution, I/O — degrades to an `ERR`
//! frame or a logged disconnect instead.

pub mod protocol;
pub mod server;

pub use server::{CatalogSchema, Server, ServerConfig, TenantSpec};
