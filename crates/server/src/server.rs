//! The serving core: a TCP listener that authenticates tenants and drives
//! one engine [`Session`] per connection on the shared [`Database`].
//!
//! Threading model: connections are I/O-bound waiters, so they get plain
//! OS threads (the engine's worker pool is for CPU-bound execution phases
//! and must never block on a socket). Query execution inside a connection
//! still runs on the shared pool via the session, so N clients share the
//! same workers, caches and eviction budget — which is the whole point:
//! one tenant's published hash tables are reusable by its later queries
//! while budget floors keep a noisy neighbour from evicting everyone
//! else's working set.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use hashstash::{Database, Session, TenantId};
use hashstash_sql::SchemaProvider;
use hashstash_storage::catalog::Catalog;
use hashstash_types::DataType;

use crate::protocol::{read_text, write_frame};

/// One authenticated principal: a name the wire protocol sees, a shared
/// secret, and an anti-starvation floor for the shared cache budget.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Wire name (`HELLO <name> <token>`).
    pub name: String,
    /// Shared secret; compared verbatim.
    pub token: String,
    /// Bytes of cached state the eviction loop will not take from this
    /// tenant while others still hold evictable tables (0 = no floor).
    pub floor_bytes: usize,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests, benches).
    pub addr: String,
    /// The tenant table. Connections must HELLO as one of these.
    pub tenants: Vec<TenantSpec>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            tenants: Vec::new(),
        }
    }
}

/// Adapter exposing the engine catalog to the SQL front end's
/// [`SchemaProvider`] — the one place the parser meets storage.
pub struct CatalogSchema<'a>(pub &'a Catalog);

impl SchemaProvider for CatalogSchema<'_> {
    fn has_table(&self, table: &str) -> bool {
        self.0.get(table).is_ok()
    }
    fn column_type(&self, table: &str, column: &str) -> Option<DataType> {
        let t = self.0.get(table).ok()?;
        let f = t.schema().field(column).ok()?;
        Some(f.dtype)
    }
}

struct Registry {
    /// name -> (token, tenant id)
    tenants: HashMap<String, (String, TenantId)>,
}

/// A running server. Dropping it (or calling [`Server::shutdown`]) stops
/// the accept loop and joins every connection thread.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Register the configured tenants on `db`, bind, and start serving.
    pub fn start(db: Arc<Database>, cfg: ServerConfig) -> io::Result<Server> {
        let mut tenants = HashMap::new();
        for t in &cfg.tenants {
            let id = db.register_tenant(&t.name);
            db.set_tenant_floor(id, t.floor_bytes);
            tenants.insert(t.name.clone(), (t.token.clone(), id));
        }
        let registry = Arc::new(Registry { tenants });
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let accept = {
            let stop = Arc::clone(&stop);
            // Connection threads detach; the OS reclaims them when the
            // client disconnects or shutdown closes the listener's side.
            // tidy:allow(no-raw-spawn): serving threads block on sockets; the
            // engine worker pool is CPU-bound and must never park on I/O.
            #[allow(clippy::disallowed_methods)]
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let stream = match conn {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    let db = Arc::clone(&db);
                    let registry = Arc::clone(&registry);
                    // tidy:allow(no-raw-spawn): one I/O-bound thread per client
                    // connection; execution inside still uses the shared pool.
                    #[allow(clippy::disallowed_methods)]
                    std::thread::spawn(move || {
                        let peer = stream
                            .peer_addr()
                            .map(|a| a.to_string())
                            .unwrap_or_else(|_| "<unknown>".to_string());
                        if let Err(e) = serve_connection(&db, &registry, stream) {
                            // I/O errors on a single connection are routine
                            // (client vanished); log and keep serving.
                            eprintln!("hs-server: connection {peer}: {e}");
                        }
                    });
                }
            })
        };
        Ok(Server {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept loop. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-connection state machine: HELLO first, then verbs until QUIT/EOF.
fn serve_connection(db: &Arc<Database>, registry: &Registry, stream: TcpStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    // --- authentication handshake --------------------------------------
    let mut session: Option<(Session, TenantId)> = None;
    while session.is_none() {
        let line = match read_text(&mut reader)? {
            Some(l) => l,
            None => return Ok(()), // client left before HELLO
        };
        let mut words = line.split_whitespace();
        match words.next() {
            Some(v) if v.eq_ignore_ascii_case("HELLO") => {
                let (name, token) = match (words.next(), words.next()) {
                    (Some(n), Some(t)) => (n, t),
                    _ => {
                        write_frame(&mut writer, b"ERR usage: HELLO <tenant> <token>")?;
                        continue;
                    }
                };
                match registry.tenants.get(name) {
                    Some((expect, id)) if expect == token => {
                        write_frame(&mut writer, format!("OK tenant={name}").as_bytes())?;
                        session = Some((db.session_as(*id), *id));
                    }
                    _ => {
                        // One message for bad name and bad token: don't
                        // leak which tenants exist.
                        write_frame(&mut writer, b"ERR authentication failed")?;
                    }
                }
            }
            Some(v) if v.eq_ignore_ascii_case("QUIT") => {
                write_frame(&mut writer, b"OK bye")?;
                return Ok(());
            }
            Some(v) if v.eq_ignore_ascii_case("PING") => {
                write_frame(&mut writer, b"OK pong")?;
            }
            _ => write_frame(
                &mut writer,
                b"ERR authenticate first: HELLO <tenant> <token>",
            )?,
        }
    }
    let (mut session, tenant) = match session {
        Some(s) => s,
        None => return Ok(()), // unreachable; loop exits only when set
    };

    // --- verb loop ------------------------------------------------------
    let mut next_qid: u32 = 1;
    while let Some(line) = read_text(&mut reader)? {
        let verb = line.split_whitespace().next().unwrap_or("");
        if verb.eq_ignore_ascii_case("QUERY") {
            let sql = line.get(verb.len()..).map(str::trim_start).unwrap_or("");
            let reply = run_query(db, &mut session, next_qid, sql);
            next_qid = next_qid.wrapping_add(1).max(1);
            write_frame(&mut writer, reply.as_bytes())?;
        } else if verb.eq_ignore_ascii_case("STATS") {
            write_frame(&mut writer, stats_reply(db, registry, tenant).as_bytes())?;
        } else if verb.eq_ignore_ascii_case("PING") {
            write_frame(&mut writer, b"OK pong")?;
        } else if verb.eq_ignore_ascii_case("QUIT") {
            write_frame(&mut writer, b"OK bye")?;
            return Ok(());
        } else if verb.eq_ignore_ascii_case("HELLO") {
            write_frame(&mut writer, b"ERR already authenticated")?;
        } else {
            write_frame(
                &mut writer,
                format!("ERR unknown verb `{verb}` (QUERY, STATS, PING, QUIT)").as_bytes(),
            )?;
        }
    }
    Ok(())
}

/// Parse, execute, and format one query. All failures become `ERR` text.
fn run_query(db: &Arc<Database>, session: &mut Session, qid: u32, sql: &str) -> String {
    if sql.is_empty() {
        return "ERR usage: QUERY <sql>".to_string();
    }
    let spec = match hashstash_sql::parse_query(sql, qid, &CatalogSchema(db.catalog())) {
        Ok(s) => s,
        Err(e) => {
            // Multi-line ERR payload: message, then the caret snippet.
            return format!("ERR {}\n{}", e.message, e.render(sql));
        }
    };
    match session.execute(&spec) {
        Ok(r) => {
            let reused: usize = r
                .decisions
                .iter()
                .filter(|(_, case)| case.is_some())
                .count();
            let mut out = format!(
                "OK rows={} wall_us={} reused={}",
                r.rows.len(),
                r.wall_time.as_micros(),
                reused
            );
            for row in &r.rows {
                out.push('\n');
                let mut first = true;
                for v in row.values() {
                    if !first {
                        out.push('\t');
                    }
                    first = false;
                    out.push_str(&v.to_string());
                }
            }
            out
        }
        Err(e) => format!("ERR execution failed: {e}"),
    }
}

/// `STATS` reply: one JSON object per configured tenant plus a `global`
/// line, so a bench (or an operator with netcat) can watch per-tenant
/// footprints move under budget pressure.
fn stats_reply(db: &Arc<Database>, registry: &Registry, me: TenantId) -> String {
    let mut names: Vec<(&str, TenantId)> = registry
        .tenants
        .iter()
        .map(|(n, (_, id))| (n.as_str(), *id))
        .collect();
    names.sort_by_key(|(_, id)| id.0);
    let mut out = String::from("OK");
    for (name, id) in names {
        let s = db.tenant_cache_stats(id);
        let marker = if id == me { ",\"you\":true" } else { "" };
        out.push_str(&format!(
            "\n{{\"tenant\":\"{name}\",\"publishes\":{},\"reuses\":{},\"evictions\":{},\
             \"bytes\":{},\"entries\":{},\"hit_ratio\":{:.4}{marker}}}",
            s.publishes,
            s.reuses,
            s.evictions,
            s.bytes,
            s.entries,
            s.hit_ratio(),
        ));
    }
    let g = db.cache_stats();
    out.push_str(&format!(
        "\n{{\"tenant\":\"*\",\"publishes\":{},\"reuses\":{},\"evictions\":{},\"bytes\":{},\
         \"entries\":{},\"hit_ratio\":{:.4}}}",
        g.publishes,
        g.reuses,
        g.evictions,
        g.bytes,
        g.entries,
        g.hit_ratio(),
    ));
    out
}

/// Flush helper used by the binary on ctrl-c-less clean exits.
pub fn flush_database(db: &Database, out: &mut impl Write) {
    match db.flush() {
        Ok(()) => {
            let _ = writeln!(out, "hs-server: state flushed");
        }
        Err(e) => {
            let _ = writeln!(out, "hs-server: flush failed: {e}");
        }
    }
}
