//! Umbrella crate for the HashStash workspace: hosts the top-level
//! examples (`examples/`) and the cross-crate integration tests (`tests/`).
//! The library surface simply re-exports [`hashstash`].

pub use hashstash::*;
