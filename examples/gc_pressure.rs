//! Garbage collection under memory pressure (paper §5): the hash-table
//! cache runs with a tight budget and the LRU collector evicts whole tables
//! while a session keeps querying.
//!
//! ```text
//! cargo run --example gc_pressure --release
//! ```

use hashstash::Database;
use hashstash_cache::GcConfig;
use hashstash_storage::tpch::{generate, TpchConfig};
use hashstash_workload::trace::{generate_trace, ReusePotential, TraceConfig};

fn main() {
    let trace = generate_trace(TraceConfig {
        reuse: ReusePotential::High,
        queries: 24,
        seed: 3,
        structural_prob: 0.15,
    });

    // Pass 1: unlimited cache to learn the peak footprint.
    let unbounded = Database::open(generate(TpchConfig::new(0.02, 42)));
    let mut warm = unbounded.session();
    for tq in &trace {
        warm.execute(&tq.query).expect("query");
    }
    let peak = unbounded.cache_stats().peak_bytes;
    println!(
        "unbounded: peak {:.1} KB across {} tables, {} reuses",
        peak as f64 / 1024.0,
        unbounded.cache_stats().entries,
        unbounded.cache_stats().reuses
    );

    // Pass 2: 20% budget — watch evictions happen while reuse continues.
    let tight = Database::builder(generate(TpchConfig::new(0.02, 42)))
        .gc(GcConfig {
            budget_bytes: Some(peak / 5),
            ..GcConfig::default()
        })
        .build();
    let mut session = tight.session();
    for (i, tq) in trace.iter().enumerate() {
        session.execute(&tq.query).expect("query");
        let s = tight.cache_stats();
        if i % 6 == 0 {
            println!(
                "after Q{i:>2}: {:>6.1} KB cached, {:>2} tables, {:>2} evictions, {:>3} reuses",
                s.bytes as f64 / 1024.0,
                s.entries,
                s.evictions,
                s.reuses
            );
        }
        assert!(s.bytes <= peak / 5, "budget holds");
    }
    let s = tight.cache_stats();
    println!(
        "with 20% budget: {} evictions, still {} reuses (vs {} unbounded)",
        s.evictions,
        s.reuses,
        unbounded.cache_stats().reuses
    );
}
