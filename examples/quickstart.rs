//! Quickstart: generate a TPC-H-style database, run one analytical query
//! twice, and watch the second execution reuse the first one's internal
//! hash tables.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use hashstash::Database;
use hashstash_plan::{AggExpr, AggFunc, Interval, QueryBuilder};
use hashstash_storage::tpch::{generate, TpchConfig};
use hashstash_types::Value;

fn main() {
    // 1. A deterministic TPC-H-style database (SF 0.02 ≈ 120k lineitems).
    let catalog = generate(TpchConfig::new(0.02, 42));
    println!("tables: {:?}", catalog.table_names());

    // 2. A database with the HashStash policy (reuse-aware optimizer +
    //    hash-table cache) and a session to drive queries through.
    let db = Database::open(catalog);
    let mut session = db.session();

    // 3. TPC-H Q3-style query: 3-way join + aggregation.
    //    SELECT c_age, SUM(l_quantity)
    //    FROM customer ⋈ orders ⋈ lineitem
    //    WHERE l_shipdate >= 1996-03-01 GROUP BY c_age
    let query = |id: u32, ship: (i32, u32, u32)| {
        QueryBuilder::new(id)
            .join(
                "customer",
                "customer.c_custkey",
                "orders",
                "orders.o_custkey",
            )
            .join(
                "orders",
                "orders.o_orderkey",
                "lineitem",
                "lineitem.l_orderkey",
            )
            .filter(
                "lineitem.l_shipdate",
                Interval::at_least(Value::date_ymd(ship.0, ship.1, ship.2)),
            )
            .group_by("customer.c_age")
            .agg(AggExpr::new(AggFunc::Sum, "lineitem.l_quantity"))
            .build()
            .expect("valid query")
    };

    let first = session.execute(&query(1, (1996, 3, 1))).expect("first run");
    println!(
        "first run : {} groups in {:.2?} (hash tables built, then cached)",
        first.rows.len(),
        first.wall_time
    );

    // 4. A follow-up query with a *wider* predicate: partial reuse — only
    //    the missing two months are scanned and added to the cached tables.
    let second = session
        .execute(&query(2, (1996, 1, 1)))
        .expect("second run");
    println!(
        "second run: {} groups in {:.2?} (reuse decisions: {:?})",
        second.rows.len(),
        second.wall_time,
        second
            .decisions
            .iter()
            .map(|(op, case)| format!("{op}={case:?}"))
            .collect::<Vec<_>>()
    );

    let stats = db.cache_stats();
    println!(
        "cache: {} tables, {} reuses, hit-ratio {:.2}, {:.1} KB",
        stats.entries,
        stats.reuses,
        stats.hit_ratio(),
        stats.bytes as f64 / 1024.0
    );
}
