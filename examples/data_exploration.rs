//! Data exploration session (the paper's Figure 2 scenario): a user zooms,
//! shifts, drills down and rolls up over TPC-H data while HashStash reuses
//! the hash tables materialized along the way.
//!
//! Compares the same session under no-reuse and HashStash.
//!
//! ```text
//! cargo run --example data_exploration --release
//! ```

use hashstash::{Database, EngineStrategy};
use hashstash_storage::tpch::{generate, TpchConfig};
use hashstash_workload::trace::{generate_trace, Interaction, ReusePotential, TraceConfig};

fn main() {
    let cfg = TraceConfig {
        reuse: ReusePotential::High,
        queries: 16,
        seed: 7,
        structural_prob: 0.25,
    };
    let trace = generate_trace(cfg);

    for strategy in [EngineStrategy::NoReuse, EngineStrategy::HashStash] {
        let catalog = generate(TpchConfig::new(0.02, 42));
        let db = Database::builder(catalog).strategy(strategy).build();
        let mut session = db.session();
        println!("\n--- strategy: {strategy:?} ---");
        let mut total = std::time::Duration::ZERO;
        for step in &trace {
            let r = session.execute(&step.query).expect("query runs");
            total += r.wall_time;
            let reused = r.decisions.iter().filter(|(_, c)| c.is_some()).count();
            let tag = match step.interaction {
                Interaction::Initial => "initial",
                Interaction::ZoomIn => "zoom-in",
                Interaction::ZoomOut => "zoom-out",
                Interaction::ShiftMuch => "shift-much",
                Interaction::ShiftLess => "shift-less",
                Interaction::DrillDown => "drill-down",
                Interaction::RollUp => "roll-up",
            };
            println!(
                "{:>2} {:<10} {:>7} rows {:>9.2?} ({} of {} operators reused)",
                step.query.id,
                tag,
                r.rows.len(),
                r.wall_time,
                reused,
                r.decisions.len(),
            );
        }
        println!(
            "total: {:.2?}; cache: {} reuses, {:.1} KB",
            total,
            db.cache_stats().reuses,
            db.cache_stats().bytes as f64 / 1024.0
        );
    }
}
