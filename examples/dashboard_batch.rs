//! Dashboard scenario: many widgets fire similar queries at once — the
//! paper's query-batch interface. Compares per-query execution against one
//! reuse-aware shared plan (paper §4).
//!
//! ```text
//! cargo run --example dashboard_batch --release
//! ```

use hashstash::{BatchMode, Database};
use hashstash_plan::{AggExpr, AggFunc, Interval, QueryBuilder, QuerySpec};
use hashstash_storage::tpch::{generate, TpchConfig};
use hashstash_types::Value;

fn widget(id: u32, lo_age: i64, hi_age: i64, func: AggFunc) -> QuerySpec {
    QueryBuilder::new(id)
        .join(
            "customer",
            "customer.c_custkey",
            "orders",
            "orders.o_custkey",
        )
        .filter(
            "customer.c_age",
            Interval::closed(Value::Int(lo_age), Value::Int(hi_age)),
        )
        .group_by("customer.c_age")
        .agg(AggExpr::new(func, "orders.o_totalprice"))
        .build()
        .expect("valid widget query")
}

fn main() {
    let catalog = generate(TpchConfig::new(0.02, 42));
    let db = Database::open(catalog);
    let mut session = db.session();

    // Eight dashboard widgets over overlapping age cohorts with different
    // aggregates — mergeable into one shared plan (same join graph).
    let batch: Vec<QuerySpec> = vec![
        widget(1, 18, 35, AggFunc::Sum),
        widget(2, 25, 45, AggFunc::Count),
        widget(3, 30, 60, AggFunc::Avg),
        widget(4, 40, 70, AggFunc::Sum),
        widget(5, 18, 92, AggFunc::Max),
        widget(6, 50, 92, AggFunc::Min),
        widget(7, 20, 40, AggFunc::Sum),
        widget(8, 60, 92, AggFunc::Count),
    ];

    for mode in [
        BatchMode::SingleNoReuse,
        BatchMode::SingleWithReuse,
        BatchMode::SharedWithReuse,
    ] {
        let t0 = std::time::Instant::now();
        let results = session.execute_batch(&batch, mode).expect("batch runs");
        let total = t0.elapsed();
        let rows: usize = results.iter().map(|r| r.rows.len()).sum();
        println!(
            "{mode:?}: {} queries, {rows} result rows, {total:.2?}",
            results.len()
        );
    }
    println!(
        "cache after batches: {} tables, {} reuses",
        db.cache_stats().entries,
        db.cache_stats().reuses
    );
}
