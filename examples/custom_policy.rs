//! Registering a custom [`ReusePolicy`] — no engine or optimizer internals
//! required. The policy here reuses only *exact* matches (never paying for
//! delta pipelines or post-filters) and refuses to admit join build-side
//! tables into the cache, keeping only aggregation results.
//!
//! ```text
//! cargo run --example custom_policy --release
//! ```

use hashstash::{Database, ReusePolicy};
use hashstash_opt::MatchRewrite;
use hashstash_plan::{AggExpr, AggFunc, HtFingerprint, HtKind, Interval, QueryBuilder, ReuseCase};
use hashstash_storage::tpch::{generate, TpchConfig};
use hashstash_types::Value;

/// Cache only aggregate tables; reuse them only on exact predicate matches.
struct ExactAggOnly;

impl ReusePolicy for ExactAggOnly {
    fn name(&self) -> &str {
        "exact-agg-only"
    }

    fn candidates(
        &self,
        _request: &HtFingerprint,
        matches: Vec<MatchRewrite>,
    ) -> Vec<MatchRewrite> {
        matches
            .into_iter()
            .filter(|m| m.case == ReuseCase::Exact)
            .collect()
    }

    fn admit(&self, fingerprint: &HtFingerprint) -> bool {
        fingerprint.kind == HtKind::Aggregate
    }
}

fn main() {
    let catalog = generate(TpchConfig::new(0.02, 42));
    // The custom policy plugs in through the builder like any built-in.
    let db = Database::builder(catalog).policy(ExactAggOnly).build();
    let mut session = db.session();

    let query = |id: u32, lo: i64, hi: i64| {
        QueryBuilder::new(id)
            .join(
                "customer",
                "customer.c_custkey",
                "orders",
                "orders.o_custkey",
            )
            .filter(
                "customer.c_age",
                Interval::closed(Value::Int(lo), Value::Int(hi)),
            )
            .group_by("customer.c_age")
            .agg(AggExpr::new(AggFunc::Sum, "orders.o_totalprice"))
            .build()
            .expect("valid query")
    };

    println!("policy: {}", db.policy().name());
    let first = session.execute(&query(1, 25, 55)).expect("first run");
    println!(
        "q1 (cold)          : {} groups, {} decisions, cache now {} tables",
        first.rows.len(),
        first.decisions.len(),
        db.cache_stats().entries
    );

    // Exact repeat ⇒ the cached aggregate answers the whole query.
    let exact = session.execute(&query(2, 25, 55)).expect("exact repeat");
    let reused = exact.decisions.iter().filter(|(_, c)| c.is_some()).count();
    println!(
        "q2 (exact repeat)  : {} groups, {reused} operator(s) reused",
        exact.rows.len()
    );

    // Widened range would only be a *partial* match — this policy skips it.
    let widened = session.execute(&query(3, 20, 60)).expect("widened");
    let reused = widened
        .decisions
        .iter()
        .filter(|(_, c)| c.is_some())
        .count();
    println!(
        "q3 (widened range) : {} groups, {reused} operator(s) reused (exact-only ⇒ 0)",
        widened.rows.len()
    );

    let stats = db.cache_stats();
    println!(
        "cache: {} tables, {} publishes, {} reuses (join builds never admitted)",
        stats.entries, stats.publishes, stats.reuses
    );
}
