//! Morsel-parallel execution must be **bit-identical** to the serial
//! interpreter: same rows, same order, same counters, for every plan shape
//! — scans, fresh joins, aggregates, exact/subsuming/partial reuse and
//! shared plans — at any worker count. Plus a stress test running parallel
//! queries concurrently with cache eviction under a tight GC budget.
//!
//! The `*_build_phase_*` tests use build sides large enough to cross the
//! partitioned-build fan-out threshold
//! ([`hashstash_exec::MIN_PARALLEL_BUILD_ROWS`]), so they pin the *build*
//! phase end to end: parallel-built tables must publish with identical
//! lineage, statistics and footprint, dedup identically, and serve
//! exact/subsuming/partial reuse with byte-identical results.

use std::sync::Arc;

use hashstash::{Database, EngineStrategy};
use hashstash_cache::HtManager;
use hashstash_exec::plan::{OutputAgg, PhysicalPlan, ReuseSpec, ScanSpec};
use hashstash_exec::shared::{
    execute_shared, SharedGroupSpec, SharedJoinStep, SharedOutput, SharedPlanSpec,
};
use hashstash_exec::{execute, ExecContext, ExecMetrics, TempTableCache};
use hashstash_plan::{
    AggExpr, AggFunc, HtFingerprint, HtKind, Interval, PredBox, QueryBuilder, Region, ReuseCase,
};
use hashstash_storage::tpch::{generate, TpchConfig};
use hashstash_storage::{Catalog, TableBuilder};
use hashstash_types::{DataType, Row, Schema, Value};

fn catalog() -> Catalog {
    generate(TpchConfig::new(0.01, 99))
}

fn scan_all(table: &str) -> PhysicalPlan {
    PhysicalPlan::Scan(ScanSpec::full(table))
}

fn customer_fp(lo: i64, hi: i64) -> HtFingerprint {
    HtFingerprint {
        kind: HtKind::JoinBuild,
        tables: std::iter::once(Arc::from("customer")).collect(),
        edges: vec![],
        region: Region::from_box(PredBox::all().with(
            "customer.c_age",
            Interval::closed(Value::Int(lo), Value::Int(hi)),
        )),
        key_attrs: vec![Arc::from("customer.c_custkey")],
        payload_attrs: vec![Arc::from("customer.c_custkey"), Arc::from("customer.c_age")],
        aggregates: vec![],
        tagged: false,
    }
}

fn join_publishing(lo: i64, hi: i64, fp: &HtFingerprint) -> PhysicalPlan {
    PhysicalPlan::HashJoin {
        probe: Box::new(scan_all("orders")),
        build: Some(Box::new(PhysicalPlan::Scan(
            ScanSpec::filtered(
                "customer",
                PredBox::all().with(
                    "customer.c_age",
                    Interval::closed(Value::Int(lo), Value::Int(hi)),
                ),
            )
            .project(&["customer.c_custkey", "customer.c_age"]),
        ))),
        probe_key: "orders.o_custkey".into(),
        build_key: "customer.c_custkey".into(),
        reuse: None,
        publish: Some(fp.clone()),
    }
}

/// Execute a reuse-heavy plan sequence — fresh scan, fresh join + publish,
/// exact reuse, subsuming reuse (post-filter), partial reuse (delta), hash
/// aggregate — under one worker count, returning every result verbatim.
fn run_sequence(cat: &Catalog, parallelism: usize) -> Vec<(Schema, Vec<Row>, ExecMetrics)> {
    let htm = HtManager::unbounded();
    let temps = TempTableCache::unbounded();
    let mut results = Vec::new();
    let mut run = |plan: &PhysicalPlan| {
        let mut ctx = ExecContext::new(cat, &htm, &temps).with_parallelism(parallelism);
        let (schema, rows) = execute(plan, &mut ctx).expect("plan executes");
        results.push((schema, rows, ctx.metrics));
    };

    // 1. Filtered scan.
    run(&PhysicalPlan::Scan(ScanSpec::filtered(
        "customer",
        PredBox::all().with(
            "customer.c_age",
            Interval::closed(Value::Int(30), Value::Int(50)),
        ),
    )));

    // 2. Fresh join over ages [30, 60], published.
    let fp = customer_fp(30, 60);
    run(&join_publishing(30, 60, &fp));
    let htm_ref = &htm;
    let cand = htm_ref.candidates(&fp).remove(0);

    // 3. Exact reuse.
    run(&PhysicalPlan::HashJoin {
        probe: Box::new(scan_all("orders")),
        build: None,
        probe_key: "orders.o_custkey".into(),
        build_key: "customer.c_custkey".into(),
        reuse: Some(ReuseSpec {
            id: cand.id,
            case: ReuseCase::Exact,
            post_filter: None,
            request_region: fp.region.clone(),
            cached_region: fp.region.clone(),
            schema: cand.schema.clone(),
        }),
        publish: None,
    });

    // 4. Subsuming reuse: ages [40, 50] answered by post-filtering [30, 60].
    let narrow = PredBox::all().with(
        "customer.c_age",
        Interval::closed(Value::Int(40), Value::Int(50)),
    );
    run(&PhysicalPlan::HashJoin {
        probe: Box::new(scan_all("orders")),
        build: None,
        probe_key: "orders.o_custkey".into(),
        build_key: "customer.c_custkey".into(),
        reuse: Some(ReuseSpec {
            id: cand.id,
            case: ReuseCase::Subsuming,
            post_filter: Some(narrow.clone()),
            request_region: Region::from_box(narrow),
            cached_region: fp.region.clone(),
            schema: cand.schema.clone(),
        }),
        publish: None,
    });

    // 5. Partial reuse: widen to [20, 60] with a delta build over [20, 29].
    let request = Region::from_box(PredBox::all().with(
        "customer.c_age",
        Interval::closed(Value::Int(20), Value::Int(60)),
    ));
    let delta = request.difference(&fp.region);
    run(&PhysicalPlan::HashJoin {
        probe: Box::new(scan_all("orders")),
        build: Some(Box::new(PhysicalPlan::Scan(ScanSpec {
            table: "customer".into(),
            region: delta,
            projection: vec!["customer.c_custkey".into(), "customer.c_age".into()],
        }))),
        probe_key: "orders.o_custkey".into(),
        build_key: "customer.c_custkey".into(),
        reuse: Some(ReuseSpec {
            id: cand.id,
            case: ReuseCase::Partial,
            post_filter: None,
            request_region: request,
            cached_region: fp.region.clone(),
            schema: cand.schema.clone(),
        }),
        publish: None,
    });

    // 6. Hash aggregate with group-by (fresh build + output pass).
    run(&PhysicalPlan::HashAggregate {
        input: Some(Box::new(scan_all("customer"))),
        group_by: vec!["customer.c_age".into()],
        aggs: vec![
            AggExpr::new(AggFunc::Sum, "customer.c_acctbal"),
            AggExpr::new(AggFunc::Count, "customer.c_custkey"),
        ],
        output_aggs: vec![OutputAgg::Direct(0), OutputAgg::Direct(1)],
        reuse: None,
        publish: None,
        post_group_by: None,
    });

    results
}

#[test]
fn parallel_plans_match_serial_row_for_row() {
    let cat = catalog();
    let serial = run_sequence(&cat, 1);
    for workers in [4, 8] {
        let parallel = run_sequence(&cat, workers);
        assert_eq!(parallel.len(), serial.len());
        for (i, ((ss, sr, sm), (ps, pr, pm))) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(ps, ss, "plan {i}, {workers} workers: schema");
            assert_eq!(pr, sr, "plan {i}, {workers} workers: rows (unsorted)");
            assert_eq!(pm, sm, "plan {i}, {workers} workers: metrics");
        }
    }
}

#[test]
fn parallel_shared_plan_matches_serial() {
    let cat = catalog();
    let queries: Vec<_> = (0..3u32)
        .map(|i| {
            QueryBuilder::new(i)
                .join(
                    "customer",
                    "customer.c_custkey",
                    "orders",
                    "orders.o_custkey",
                )
                .filter(
                    "customer.c_age",
                    Interval::closed(
                        Value::Int(20 + i as i64 * 10),
                        Value::Int(50 + i as i64 * 10),
                    ),
                )
                .group_by("customer.c_age")
                .agg(AggExpr::new(AggFunc::Count, "orders.o_orderkey"))
                .build()
                .unwrap()
        })
        .collect();
    let spec = SharedPlanSpec {
        queries: queries.clone(),
        driver: "orders".into(),
        driver_attrs: vec!["orders.o_orderkey".into(), "orders.o_custkey".into()],
        steps: vec![SharedJoinStep {
            table: "customer".into(),
            probe_attr: "orders.o_custkey".into(),
            build_key: "customer.c_custkey".into(),
            payload: vec!["customer.c_custkey".into(), "customer.c_age".into()],
            reuse: None,
            publish: None,
        }],
        group_specs: vec![SharedGroupSpec {
            group_by: vec!["customer.c_age".into()],
            stored_attrs: vec!["customer.c_age".into(), "orders.o_orderkey".into()],
            reuse: None,
            publish: None,
        }],
        outputs: queries
            .iter()
            .map(|q| SharedOutput::Aggregate {
                group_spec: 0,
                aggs: q.aggregates.clone(),
            })
            .collect(),
    };
    let run = |parallelism: usize| {
        let htm = HtManager::unbounded();
        let temps = TempTableCache::unbounded();
        let mut ctx = ExecContext::new(&cat, &htm, &temps).with_parallelism(parallelism);
        let results = execute_shared(&spec, &mut ctx).unwrap();
        (
            results
                .into_iter()
                .map(|r| (r.query, r.rows))
                .collect::<Vec<_>>(),
            ctx.metrics,
        )
    };
    let (serial_rows, serial_metrics) = run(1);
    for workers in [4, 8] {
        let (rows, metrics) = run(workers);
        assert_eq!(rows, serial_rows, "{workers} workers");
        assert_eq!(metrics, serial_metrics, "{workers} workers");
    }
}

// ---------------------------------------------------------------------------
// Build-phase coverage: build sides above MIN_PARALLEL_BUILD_ROWS, so the
// partitioned parallel build actually engages at workers > 1.
// ---------------------------------------------------------------------------

/// Synthetic star schema with a build side (12k dim rows) well above the
/// partitioned-build threshold, a float measure (so aggregate accumulation
/// order is observable bit for bit) and fact fan-out 2.
fn big_catalog() -> Catalog {
    let n = 12_000i64;
    let mut cat = Catalog::new();
    let mut d = TableBuilder::new(
        "dim",
        vec![
            ("d_key", DataType::Int),
            ("d_attr", DataType::Int),
            ("d_val", DataType::Float),
        ],
    );
    for i in 0..n {
        d.push_row(vec![
            Value::Int(i),
            Value::Int(i % 797),
            Value::float((i % 101) as f64 * 0.25 - 7.5),
        ]);
    }
    cat.register(d.finish());
    let mut f = TableBuilder::new("fact", vec![("f_key", DataType::Int)]);
    for i in 0..n * 2 {
        f.push_row(vec![Value::Int((i * 7) % n)]);
    }
    cat.register(f.finish());
    cat
}

fn dim_join_fp(lo: i64, hi: i64) -> HtFingerprint {
    HtFingerprint {
        kind: HtKind::JoinBuild,
        tables: std::iter::once(Arc::from("dim")).collect(),
        edges: vec![],
        region: Region::from_box(PredBox::all().with(
            "dim.d_key",
            Interval::closed(Value::Int(lo), Value::Int(hi)),
        )),
        key_attrs: vec![Arc::from("dim.d_key")],
        payload_attrs: vec![Arc::from("dim.d_key"), Arc::from("dim.d_attr")],
        aggregates: vec![],
        tagged: false,
    }
}

fn dim_filtered_scan(lo: i64, hi: i64) -> PhysicalPlan {
    PhysicalPlan::Scan(
        ScanSpec::filtered(
            "dim",
            PredBox::all().with(
                "dim.d_key",
                Interval::closed(Value::Int(lo), Value::Int(hi)),
            ),
        )
        .project(&["dim.d_key", "dim.d_attr"]),
    )
}

fn dim_join(
    build: Option<PhysicalPlan>,
    reuse: Option<ReuseSpec>,
    fp: Option<HtFingerprint>,
) -> PhysicalPlan {
    PhysicalPlan::HashJoin {
        probe: Box::new(scan_all("fact")),
        build: build.map(Box::new),
        probe_key: "fact.f_key".into(),
        build_key: "dim.d_key".into(),
        reuse,
        publish: fp,
    }
}

/// Everything a worker-count run of the build-heavy sequence observes:
/// per-plan outputs + metrics, the published tables' lineage/statistics,
/// and the cache counters (publishes, dedups, reuses).
struct BuildRun {
    results: Vec<(Schema, Vec<Row>, ExecMetrics)>,
    join_stats: (usize, usize, usize, usize),
    join_region: Region,
    agg_stats: (usize, usize, usize, usize),
    agg_region: Region,
    cache: hashstash_cache::CacheStats,
}

/// Build-bound sequence: fresh parallel-built join publish, an
/// identical-lineage re-publish (dedup), exact / subsuming / partial reuse
/// of the parallel-built table, a fresh parallel-built aggregate publish
/// (float sums), and an exact aggregate reuse.
fn run_build_sequence(cat: &Catalog, parallelism: usize) -> BuildRun {
    let htm = HtManager::unbounded();
    let temps = TempTableCache::unbounded();
    let mut results = Vec::new();
    let mut run = |plan: &PhysicalPlan| {
        let mut ctx = ExecContext::new(cat, &htm, &temps).with_parallelism(parallelism);
        let (schema, rows) = execute(plan, &mut ctx).expect("plan executes");
        results.push((schema, rows, ctx.metrics));
    };

    // 1. Fresh join: 8001-row build side (parallel build at workers > 1),
    //    published.
    let fp = dim_join_fp(0, 8000);
    run(&dim_join(
        Some(dim_filtered_scan(0, 8000)),
        None,
        Some(fp.clone()),
    ));
    let cand = htm.candidates(&fp).remove(0);

    // 2. Identical-lineage re-publish: the parallel-built table must dedup
    //    against the cached one exactly like a serially built table.
    run(&dim_join(
        Some(dim_filtered_scan(0, 8000)),
        None,
        Some(fp.clone()),
    ));

    // 3. Exact reuse of the parallel-built table.
    run(&dim_join(
        None,
        Some(ReuseSpec {
            id: cand.id,
            case: ReuseCase::Exact,
            post_filter: None,
            request_region: fp.region.clone(),
            cached_region: fp.region.clone(),
            schema: cand.schema.clone(),
        }),
        None,
    ));

    // 4. Subsuming reuse: post-filter the parallel-built table to d_key
    //    [2000, 6000].
    let narrow = PredBox::all().with(
        "dim.d_key",
        Interval::closed(Value::Int(2000), Value::Int(6000)),
    );
    run(&dim_join(
        None,
        Some(ReuseSpec {
            id: cand.id,
            case: ReuseCase::Subsuming,
            post_filter: Some(narrow.clone()),
            request_region: Region::from_box(narrow),
            cached_region: fp.region.clone(),
            schema: cand.schema.clone(),
        }),
        None,
    ));

    // 5. Partial (mutating) reuse: widen to [0, 10000] — the serial delta
    //    insert extends the parallel-built chain history.
    let request = Region::from_box(PredBox::all().with(
        "dim.d_key",
        Interval::closed(Value::Int(0), Value::Int(10_000)),
    ));
    let delta = request.difference(&fp.region);
    run(&dim_join(
        Some(PhysicalPlan::Scan(ScanSpec {
            table: "dim".into(),
            region: delta,
            projection: vec!["dim.d_key".into(), "dim.d_attr".into()],
        })),
        Some(ReuseSpec {
            id: cand.id,
            case: ReuseCase::Partial,
            post_filter: None,
            request_region: request,
            cached_region: fp.region.clone(),
            schema: cand.schema.clone(),
        }),
        None,
    ));

    // 6. Fresh aggregate: 12k input rows (parallel grouped build), float
    //    sums whose accumulation order is observable, published.
    let aggs = vec![
        AggExpr::new(AggFunc::Sum, "dim.d_val"),
        AggExpr::new(AggFunc::Count, "dim.d_key"),
    ];
    let agg_fp = HtFingerprint {
        kind: HtKind::Aggregate,
        tables: std::iter::once(Arc::from("dim")).collect(),
        edges: vec![],
        region: Region::all(),
        key_attrs: vec![Arc::from("dim.d_attr")],
        payload_attrs: vec![Arc::from("dim.d_attr")],
        aggregates: aggs.clone(),
        tagged: false,
    };
    let agg_plan = |reuse: Option<ReuseSpec>, publish: Option<HtFingerprint>, input: bool| {
        PhysicalPlan::HashAggregate {
            input: input.then(|| Box::new(scan_all("dim"))),
            group_by: vec!["dim.d_attr".into()],
            aggs: aggs.clone(),
            output_aggs: vec![OutputAgg::Direct(0), OutputAgg::Direct(1)],
            reuse,
            publish,
            post_group_by: None,
        }
    };
    run(&agg_plan(None, Some(agg_fp.clone()), true));
    let agg_cand = htm.candidates(&agg_fp).remove(0);

    // 7. Exact reuse of the parallel-built aggregate.
    run(&agg_plan(
        Some(ReuseSpec {
            id: agg_cand.id,
            case: ReuseCase::Exact,
            post_filter: None,
            request_region: Region::all(),
            cached_region: agg_cand.fingerprint.region.clone(),
            schema: agg_cand.schema.clone(),
        }),
        None,
        false,
    ));

    let jc = htm.candidates(&fp).remove(0);
    let ac = htm.candidates(&agg_fp).remove(0);
    BuildRun {
        results,
        join_stats: (jc.entries, jc.distinct_keys, jc.tuple_width, jc.bytes),
        join_region: jc.fingerprint.region.clone(),
        agg_stats: (ac.entries, ac.distinct_keys, ac.tuple_width, ac.bytes),
        agg_region: ac.fingerprint.region.clone(),
        cache: htm.stats(),
    }
}

/// The build phase end to end: a parallel build must change *nothing*
/// observable — rows, order, metrics, published lineage and statistics,
/// dedup and reuse behavior — relative to the serial interpreter.
#[test]
fn parallel_build_phase_matches_serial_end_to_end() {
    let cat = big_catalog();
    let serial = run_build_sequence(&cat, 1);
    assert!(
        serial.cache.publish_dedups >= 1,
        "the identical-lineage re-publish must dedup"
    );
    for workers in [4, 8] {
        let parallel = run_build_sequence(&cat, workers);
        assert_eq!(parallel.results.len(), serial.results.len());
        for (i, ((ss, sr, sm), (ps, pr, pm))) in
            serial.results.iter().zip(&parallel.results).enumerate()
        {
            assert_eq!(ps, ss, "plan {i}, {workers} workers: schema");
            assert_eq!(pr, sr, "plan {i}, {workers} workers: rows (unsorted)");
            assert_eq!(pm, sm, "plan {i}, {workers} workers: metrics");
        }
        assert_eq!(
            parallel.join_stats, serial.join_stats,
            "{workers} workers: published join table statistics"
        );
        assert_eq!(
            parallel.agg_stats, serial.agg_stats,
            "{workers} workers: published aggregate statistics"
        );
        assert!(
            parallel.join_region.set_eq(&serial.join_region),
            "{workers} workers: join lineage region"
        );
        assert!(
            parallel.agg_region.set_eq(&serial.agg_region),
            "{workers} workers: aggregate lineage region"
        );
        assert_eq!(
            parallel.cache, serial.cache,
            "{workers} workers: cache counters (publishes/dedups/reuses/bytes)"
        );
    }
}

/// Shared plans with a build side above the fan-out threshold: the tagged
/// table is parallel-built in batch 1, published, then *reused with
/// re-tagging* by batch 2 — results and metrics must match the serial
/// interpreter at every worker count.
#[test]
fn parallel_shared_build_phase_matches_serial() {
    let cat = big_catalog();
    let mk_query = |id: u32, lo: i64, hi: i64| {
        QueryBuilder::new(id)
            .join("dim", "dim.d_key", "fact", "fact.f_key")
            .filter(
                "dim.d_attr",
                Interval::closed(Value::Int(lo), Value::Int(hi)),
            )
            .group_by("dim.d_attr")
            .agg(AggExpr::new(AggFunc::Count, "fact.f_key"))
            .build()
            .unwrap()
    };
    let mk_spec = |queries: Vec<hashstash_plan::QuerySpec>,
                   reuse: Option<hashstash_exec::SharedReuse>,
                   publish: Option<HtFingerprint>| {
        let outputs = queries
            .iter()
            .map(|q| SharedOutput::Aggregate {
                group_spec: 0,
                aggs: q.aggregates.clone(),
            })
            .collect();
        SharedPlanSpec {
            queries,
            driver: "fact".into(),
            driver_attrs: vec!["fact.f_key".into()],
            steps: vec![SharedJoinStep {
                table: "dim".into(),
                probe_attr: "fact.f_key".into(),
                build_key: "dim.d_key".into(),
                payload: vec!["dim.d_key".into(), "dim.d_attr".into()],
                reuse,
                publish,
            }],
            group_specs: vec![SharedGroupSpec {
                group_by: vec!["dim.d_attr".into()],
                stored_attrs: vec!["dim.d_attr".into(), "fact.f_key".into()],
                reuse: None,
                publish: None,
            }],
            outputs,
        }
    };
    let tagged_fp = HtFingerprint {
        tagged: true,
        region: Region::from_box(PredBox::all().with(
            "dim.d_attr",
            Interval::closed(Value::Int(0), Value::Int(750)),
        )),
        ..dim_join_fp(0, 0)
    };
    let run = |parallelism: usize| {
        let htm = HtManager::unbounded();
        let temps = TempTableCache::unbounded();
        // Batch 1: wide predicates → >11k-row tagged build, published.
        let spec1 = mk_spec(
            vec![mk_query(1, 0, 500), mk_query(2, 250, 750)],
            None,
            Some(tagged_fp.clone()),
        );
        let mut ctx = ExecContext::new(&cat, &htm, &temps).with_parallelism(parallelism);
        let r1 = execute_shared(&spec1, &mut ctx).unwrap();
        let cand = htm.candidates(&tagged_fp).remove(0);
        // Batch 2: subsuming reuse of the parallel-built tagged table, with
        // the mandatory re-tag pass.
        let request = Region::from_box(PredBox::all().with(
            "dim.d_attr",
            Interval::closed(Value::Int(100), Value::Int(600)),
        ));
        let spec2 = mk_spec(
            vec![mk_query(10, 100, 400), mk_query(11, 300, 600)],
            Some(hashstash_exec::SharedReuse {
                id: cand.id,
                case: ReuseCase::Subsuming,
                delta_region: Region::empty(),
                request_region: request,
                cached_region: tagged_fp.region.clone(),
            }),
            None,
        );
        let r2 = execute_shared(&spec2, &mut ctx).unwrap();
        let out: Vec<_> = r1
            .into_iter()
            .chain(r2)
            .map(|r| (r.query, r.schema, r.rows))
            .collect();
        (
            out,
            ctx.metrics,
            (cand.entries, cand.distinct_keys, cand.bytes),
        )
    };
    let (serial_out, serial_metrics, serial_cand) = run(1);
    for workers in [4, 8] {
        let (out, metrics, cand) = run(workers);
        assert_eq!(out, serial_out, "{workers} workers");
        assert_eq!(metrics, serial_metrics, "{workers} workers");
        assert_eq!(
            cand, serial_cand,
            "{workers} workers: published tagged table stats"
        );
    }
}

/// Parallel queries racing cache eviction under a tight GC budget: every
/// answer must match the no-reuse reference, and the cache byte accounting
/// must audit clean at quiesce.
#[test]
fn parallel_queries_race_eviction_under_tight_budget() {
    let mk_query = |id: u32, k: i64| {
        QueryBuilder::new(id)
            .join(
                "customer",
                "customer.c_custkey",
                "orders",
                "orders.o_custkey",
            )
            .filter(
                "customer.c_age",
                Interval::closed(Value::Int(20 + k), Value::Int(60 + k)),
            )
            .group_by("customer.c_age")
            .agg(AggExpr::new(AggFunc::Count, "orders.o_orderkey"))
            .build()
            .unwrap()
    };

    // Serial, reuse-free reference answers (COUNT aggregates: exact ints).
    let reference = Database::builder(catalog())
        .strategy(EngineStrategy::NoReuse)
        .parallelism(1)
        .build();
    let mut ref_session = reference.session();
    let expected: Vec<Vec<Row>> = (0..8)
        .map(|k| {
            let mut rows = ref_session
                .execute(&mk_query(1000 + k, k as i64))
                .unwrap()
                .rows;
            rows.sort();
            rows
        })
        .collect();

    let budget = 96 * 1024;
    let db = Database::builder(catalog())
        .gc_budget(budget)
        .parallelism(4)
        .build();
    let expected = Arc::new(expected);
    std::thread::scope(|s| {
        for t in 0..4u32 {
            let db = Arc::clone(&db);
            let expected = Arc::clone(&expected);
            s.spawn(move || {
                let mut session = db.session();
                for round in 0..6u32 {
                    let k = ((t + round) % 8) as usize;
                    let q = mk_query(t * 100 + round, k as i64);
                    let mut rows = session.execute(&q).expect("query survives eviction").rows;
                    rows.sort();
                    assert_eq!(rows, expected[k], "thread {t} round {round}");
                }
            });
        }
    });
    let stats = db.cache_stats();
    assert!(stats.bytes <= budget, "budget holds at quiesce");
    let (audit_bytes, audit_entries) = db.cache().audit();
    assert_eq!(stats.bytes, audit_bytes, "byte accounting audits clean");
    assert_eq!(stats.entries, audit_entries);
}
