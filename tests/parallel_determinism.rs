//! Morsel-parallel execution must be **bit-identical** to the serial
//! interpreter: same rows, same order, same counters, for every plan shape
//! — scans, fresh joins, aggregates, exact/subsuming/partial reuse and
//! shared plans — at any worker count. Plus a stress test running parallel
//! queries concurrently with cache eviction under a tight GC budget.

use std::sync::Arc;

use hashstash::{Database, EngineStrategy};
use hashstash_cache::HtManager;
use hashstash_exec::plan::{OutputAgg, PhysicalPlan, ReuseSpec, ScanSpec};
use hashstash_exec::shared::{
    execute_shared, SharedGroupSpec, SharedJoinStep, SharedOutput, SharedPlanSpec,
};
use hashstash_exec::{execute, ExecContext, ExecMetrics, TempTableCache};
use hashstash_plan::{
    AggExpr, AggFunc, HtFingerprint, HtKind, Interval, PredBox, QueryBuilder, Region, ReuseCase,
};
use hashstash_storage::tpch::{generate, TpchConfig};
use hashstash_storage::Catalog;
use hashstash_types::{Row, Schema, Value};

fn catalog() -> Catalog {
    generate(TpchConfig::new(0.01, 99))
}

fn scan_all(table: &str) -> PhysicalPlan {
    PhysicalPlan::Scan(ScanSpec::full(table))
}

fn customer_fp(lo: i64, hi: i64) -> HtFingerprint {
    HtFingerprint {
        kind: HtKind::JoinBuild,
        tables: std::iter::once(Arc::from("customer")).collect(),
        edges: vec![],
        region: Region::from_box(PredBox::all().with(
            "customer.c_age",
            Interval::closed(Value::Int(lo), Value::Int(hi)),
        )),
        key_attrs: vec![Arc::from("customer.c_custkey")],
        payload_attrs: vec![Arc::from("customer.c_custkey"), Arc::from("customer.c_age")],
        aggregates: vec![],
        tagged: false,
    }
}

fn join_publishing(lo: i64, hi: i64, fp: &HtFingerprint) -> PhysicalPlan {
    PhysicalPlan::HashJoin {
        probe: Box::new(scan_all("orders")),
        build: Some(Box::new(PhysicalPlan::Scan(
            ScanSpec::filtered(
                "customer",
                PredBox::all().with(
                    "customer.c_age",
                    Interval::closed(Value::Int(lo), Value::Int(hi)),
                ),
            )
            .project(&["customer.c_custkey", "customer.c_age"]),
        ))),
        probe_key: "orders.o_custkey".into(),
        build_key: "customer.c_custkey".into(),
        reuse: None,
        publish: Some(fp.clone()),
    }
}

/// Execute a reuse-heavy plan sequence — fresh scan, fresh join + publish,
/// exact reuse, subsuming reuse (post-filter), partial reuse (delta), hash
/// aggregate — under one worker count, returning every result verbatim.
fn run_sequence(cat: &Catalog, parallelism: usize) -> Vec<(Schema, Vec<Row>, ExecMetrics)> {
    let htm = HtManager::unbounded();
    let temps = TempTableCache::unbounded();
    let mut results = Vec::new();
    let mut run = |plan: &PhysicalPlan| {
        let mut ctx = ExecContext::new(cat, &htm, &temps).with_parallelism(parallelism);
        let (schema, rows) = execute(plan, &mut ctx).expect("plan executes");
        results.push((schema, rows, ctx.metrics));
    };

    // 1. Filtered scan.
    run(&PhysicalPlan::Scan(ScanSpec::filtered(
        "customer",
        PredBox::all().with(
            "customer.c_age",
            Interval::closed(Value::Int(30), Value::Int(50)),
        ),
    )));

    // 2. Fresh join over ages [30, 60], published.
    let fp = customer_fp(30, 60);
    run(&join_publishing(30, 60, &fp));
    let htm_ref = &htm;
    let cand = htm_ref.candidates(&fp).remove(0);

    // 3. Exact reuse.
    run(&PhysicalPlan::HashJoin {
        probe: Box::new(scan_all("orders")),
        build: None,
        probe_key: "orders.o_custkey".into(),
        build_key: "customer.c_custkey".into(),
        reuse: Some(ReuseSpec {
            id: cand.id,
            case: ReuseCase::Exact,
            post_filter: None,
            request_region: fp.region.clone(),
            cached_region: fp.region.clone(),
            schema: cand.schema.clone(),
        }),
        publish: None,
    });

    // 4. Subsuming reuse: ages [40, 50] answered by post-filtering [30, 60].
    let narrow = PredBox::all().with(
        "customer.c_age",
        Interval::closed(Value::Int(40), Value::Int(50)),
    );
    run(&PhysicalPlan::HashJoin {
        probe: Box::new(scan_all("orders")),
        build: None,
        probe_key: "orders.o_custkey".into(),
        build_key: "customer.c_custkey".into(),
        reuse: Some(ReuseSpec {
            id: cand.id,
            case: ReuseCase::Subsuming,
            post_filter: Some(narrow.clone()),
            request_region: Region::from_box(narrow),
            cached_region: fp.region.clone(),
            schema: cand.schema.clone(),
        }),
        publish: None,
    });

    // 5. Partial reuse: widen to [20, 60] with a delta build over [20, 29].
    let request = Region::from_box(PredBox::all().with(
        "customer.c_age",
        Interval::closed(Value::Int(20), Value::Int(60)),
    ));
    let delta = request.difference(&fp.region);
    run(&PhysicalPlan::HashJoin {
        probe: Box::new(scan_all("orders")),
        build: Some(Box::new(PhysicalPlan::Scan(ScanSpec {
            table: "customer".into(),
            region: delta,
            projection: vec!["customer.c_custkey".into(), "customer.c_age".into()],
        }))),
        probe_key: "orders.o_custkey".into(),
        build_key: "customer.c_custkey".into(),
        reuse: Some(ReuseSpec {
            id: cand.id,
            case: ReuseCase::Partial,
            post_filter: None,
            request_region: request,
            cached_region: fp.region.clone(),
            schema: cand.schema.clone(),
        }),
        publish: None,
    });

    // 6. Hash aggregate with group-by (fresh build + output pass).
    run(&PhysicalPlan::HashAggregate {
        input: Some(Box::new(scan_all("customer"))),
        group_by: vec!["customer.c_age".into()],
        aggs: vec![
            AggExpr::new(AggFunc::Sum, "customer.c_acctbal"),
            AggExpr::new(AggFunc::Count, "customer.c_custkey"),
        ],
        output_aggs: vec![OutputAgg::Direct(0), OutputAgg::Direct(1)],
        reuse: None,
        publish: None,
        post_group_by: None,
    });

    results
}

#[test]
fn parallel_plans_match_serial_row_for_row() {
    let cat = catalog();
    let serial = run_sequence(&cat, 1);
    for workers in [4, 8] {
        let parallel = run_sequence(&cat, workers);
        assert_eq!(parallel.len(), serial.len());
        for (i, ((ss, sr, sm), (ps, pr, pm))) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(ps, ss, "plan {i}, {workers} workers: schema");
            assert_eq!(pr, sr, "plan {i}, {workers} workers: rows (unsorted)");
            assert_eq!(pm, sm, "plan {i}, {workers} workers: metrics");
        }
    }
}

#[test]
fn parallel_shared_plan_matches_serial() {
    let cat = catalog();
    let queries: Vec<_> = (0..3u32)
        .map(|i| {
            QueryBuilder::new(i)
                .join(
                    "customer",
                    "customer.c_custkey",
                    "orders",
                    "orders.o_custkey",
                )
                .filter(
                    "customer.c_age",
                    Interval::closed(
                        Value::Int(20 + i as i64 * 10),
                        Value::Int(50 + i as i64 * 10),
                    ),
                )
                .group_by("customer.c_age")
                .agg(AggExpr::new(AggFunc::Count, "orders.o_orderkey"))
                .build()
                .unwrap()
        })
        .collect();
    let spec = SharedPlanSpec {
        queries: queries.clone(),
        driver: "orders".into(),
        driver_attrs: vec!["orders.o_orderkey".into(), "orders.o_custkey".into()],
        steps: vec![SharedJoinStep {
            table: "customer".into(),
            probe_attr: "orders.o_custkey".into(),
            build_key: "customer.c_custkey".into(),
            payload: vec!["customer.c_custkey".into(), "customer.c_age".into()],
            reuse: None,
            publish: None,
        }],
        group_specs: vec![SharedGroupSpec {
            group_by: vec!["customer.c_age".into()],
            stored_attrs: vec!["customer.c_age".into(), "orders.o_orderkey".into()],
            reuse: None,
            publish: None,
        }],
        outputs: queries
            .iter()
            .map(|q| SharedOutput::Aggregate {
                group_spec: 0,
                aggs: q.aggregates.clone(),
            })
            .collect(),
    };
    let run = |parallelism: usize| {
        let htm = HtManager::unbounded();
        let temps = TempTableCache::unbounded();
        let mut ctx = ExecContext::new(&cat, &htm, &temps).with_parallelism(parallelism);
        let results = execute_shared(&spec, &mut ctx).unwrap();
        (
            results
                .into_iter()
                .map(|r| (r.query, r.rows))
                .collect::<Vec<_>>(),
            ctx.metrics,
        )
    };
    let (serial_rows, serial_metrics) = run(1);
    for workers in [4, 8] {
        let (rows, metrics) = run(workers);
        assert_eq!(rows, serial_rows, "{workers} workers");
        assert_eq!(metrics, serial_metrics, "{workers} workers");
    }
}

/// Parallel queries racing cache eviction under a tight GC budget: every
/// answer must match the no-reuse reference, and the cache byte accounting
/// must audit clean at quiesce.
#[test]
fn parallel_queries_race_eviction_under_tight_budget() {
    let mk_query = |id: u32, k: i64| {
        QueryBuilder::new(id)
            .join(
                "customer",
                "customer.c_custkey",
                "orders",
                "orders.o_custkey",
            )
            .filter(
                "customer.c_age",
                Interval::closed(Value::Int(20 + k), Value::Int(60 + k)),
            )
            .group_by("customer.c_age")
            .agg(AggExpr::new(AggFunc::Count, "orders.o_orderkey"))
            .build()
            .unwrap()
    };

    // Serial, reuse-free reference answers (COUNT aggregates: exact ints).
    let reference = Database::builder(catalog())
        .strategy(EngineStrategy::NoReuse)
        .parallelism(1)
        .build();
    let mut ref_session = reference.session();
    let expected: Vec<Vec<Row>> = (0..8)
        .map(|k| {
            let mut rows = ref_session
                .execute(&mk_query(1000 + k, k as i64))
                .unwrap()
                .rows;
            rows.sort();
            rows
        })
        .collect();

    let budget = 96 * 1024;
    let db = Database::builder(catalog())
        .gc_budget(budget)
        .parallelism(4)
        .build();
    let expected = Arc::new(expected);
    std::thread::scope(|s| {
        for t in 0..4u32 {
            let db = Arc::clone(&db);
            let expected = Arc::clone(&expected);
            s.spawn(move || {
                let mut session = db.session();
                for round in 0..6u32 {
                    let k = ((t + round) % 8) as usize;
                    let q = mk_query(t * 100 + round, k as i64);
                    let mut rows = session.execute(&q).expect("query survives eviction").rows;
                    rows.sort();
                    assert_eq!(rows, expected[k], "thread {t} round {round}");
                }
            });
        }
    });
    let stats = db.cache_stats();
    assert!(stats.bytes <= budget, "budget holds at quiesce");
    let (audit_bytes, audit_entries) = db.cache().audit();
    assert_eq!(stats.bytes, audit_bytes, "byte accounting audits clean");
    assert_eq!(stats.entries, audit_entries);
}
