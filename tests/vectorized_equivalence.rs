//! The vectorized columnar executor must be **indistinguishable** from the
//! row-at-a-time interpreter: same rows, same order, same semantic metrics,
//! same published hash tables (layout included), at every worker count.
//!
//! Three legs:
//!
//! 1. A vendored-proptest differential battery sweeping predicate op ×
//!    column type (Int / Float-with-NaN-and-negative-zero / Date /
//!    dictionary Str, plus a two-column conjunction) across the four plan
//!    shapes that have columnar paths — scan, filter, hash-join probe with
//!    publish, hash aggregate with publish — at 1/4/8 workers.
//! 2. A fixed large-table run where the morsel fan-out genuinely engages,
//!    which additionally pins that the vectorized counters move (the
//!    columnar path really ran) and that the oracle's stay zero.
//! 3. Tight-GC-budget stress: a deterministic publish/reuse/evict sequence
//!    must make byte-for-byte identical eviction decisions in both regimes
//!    (footprints are only comparable if the tables are), plus a threaded
//!    engine-level race against the no-reuse reference with vectorization
//!    on and off.

use std::sync::Arc;

use proptest::prelude::*;

use hashstash::{Database, EngineStrategy};
use hashstash_cache::{AggPayload, GcConfig, HtManager, StoredHt, TaggedRow};
use hashstash_exec::plan::{OutputAgg, PhysicalPlan, ReuseSpec, ScanSpec};
use hashstash_exec::{execute, ExecContext, ExecMetrics, TempTableCache};
use hashstash_plan::{
    AggExpr, AggFunc, HtFingerprint, HtKind, Interval, PredBox, QueryBuilder, Region, ReuseCase,
};
use hashstash_storage::{Catalog, TableBuilder};
use hashstash_types::{DataType, Row, Schema, Value};

/// Float domain with the order-sensitive edge cases: negative zero (must
/// compare equal to positive zero), NaN (total order: largest) and
/// infinities, so the `f64_order_key` lowering is exercised against the
/// boxed total order on every op.
const FLOATS: [f64; 8] = [
    f64::NEG_INFINITY,
    -3.5,
    -0.0,
    0.0,
    0.25,
    2.5,
    f64::INFINITY,
    f64::NAN,
];

/// Dictionary universe of the string column.
const DICT: [&str; 4] = ["alpha", "beta", "delta", "gamma"];

/// The worker counts every comparison runs at.
const WORKERS: [usize; 3] = [1, 4, 8];

// ---------------------------------------------------------------------------
// Catalog construction (no indexes on the filter columns, so scans take the
// columnar path rather than the index path).
// ---------------------------------------------------------------------------

type TRow = (i64, i64, usize, i32, usize);

fn build_catalog(rows: &[TRow], dim_keys: i64) -> Catalog {
    let mut cat = Catalog::new();
    let mut t = TableBuilder::with_capacity(
        "t",
        vec![
            ("k", DataType::Int),
            ("a", DataType::Int),
            ("f", DataType::Float),
            ("d", DataType::Date),
            ("s", DataType::Str),
        ],
        rows.len(),
    );
    for &(k, a, f_idx, d, s_idx) in rows {
        t.push_row(vec![
            Value::Int(k),
            Value::Int(a),
            Value::float(FLOATS[f_idx % FLOATS.len()]),
            Value::Date(d),
            Value::str(DICT[s_idx % DICT.len()]),
        ]);
    }
    cat.register(t.finish());
    let mut dim = TableBuilder::with_capacity(
        "dim",
        vec![("d_key", DataType::Int), ("d_tag", DataType::Str)],
        dim_keys as usize,
    );
    for i in 0..dim_keys {
        dim.push_row(vec![
            Value::Int(i),
            Value::str(DICT[(i % DICT.len() as i64) as usize]),
        ]);
    }
    cat.register(dim.finish());
    cat
}

fn join_fp() -> HtFingerprint {
    HtFingerprint {
        kind: HtKind::JoinBuild,
        tables: std::iter::once(Arc::from("dim")).collect(),
        edges: vec![],
        region: Region::all(),
        key_attrs: vec![Arc::from("dim.d_key")],
        payload_attrs: vec![Arc::from("dim.d_key"), Arc::from("dim.d_tag")],
        aggregates: vec![],
        tagged: false,
    }
}

fn agg_exprs() -> Vec<AggExpr> {
    vec![
        AggExpr::new(AggFunc::Sum, "t.f"),
        AggExpr::new(AggFunc::Count, "t.k"),
        AggExpr::new(AggFunc::Min, "t.d"),
    ]
}

fn agg_fp(pred: &PredBox) -> HtFingerprint {
    HtFingerprint {
        kind: HtKind::Aggregate,
        tables: std::iter::once(Arc::from("t")).collect(),
        edges: vec![],
        region: Region::from_box(pred.clone()),
        key_attrs: vec![Arc::from("t.a"), Arc::from("t.s")],
        payload_attrs: vec![Arc::from("t.a"), Arc::from("t.s")],
        aggregates: agg_exprs(),
        tagged: false,
    }
}

/// The four plan shapes with columnar hot paths, parameterized by the
/// generated predicate.
fn plans(pred: &PredBox) -> Vec<PhysicalPlan> {
    vec![
        // 1. Filtered scan: selection-vector build per region box.
        PhysicalPlan::Scan(ScanSpec::filtered("t", pred.clone())),
        // 2. Filter over a full scan: in-place selection refinement.
        PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::Scan(ScanSpec::full("t"))),
            predicate: pred.clone(),
        },
        // 3. Hash join: vectorized probe-key extraction over the filtered
        //    probe side, published build table.
        PhysicalPlan::HashJoin {
            probe: Box::new(PhysicalPlan::Scan(ScanSpec::filtered("t", pred.clone()))),
            build: Some(Box::new(PhysicalPlan::Scan(
                ScanSpec::full("dim").project(&["dim.d_key", "dim.d_tag"]),
            ))),
            probe_key: "t.k".into(),
            build_key: "dim.d_key".into(),
            reuse: None,
            publish: Some(join_fp()),
        },
        // 4. Hash aggregate: vectorized multi-column group keys + folds,
        //    published accumulator table.
        PhysicalPlan::HashAggregate {
            input: Some(Box::new(PhysicalPlan::Scan(ScanSpec::filtered(
                "t",
                pred.clone(),
            )))),
            group_by: vec!["t.a".into(), "t.s".into()],
            aggs: agg_exprs(),
            output_aggs: vec![
                OutputAgg::Direct(0),
                OutputAgg::Direct(1),
                OutputAgg::Direct(2),
            ],
            reuse: None,
            publish: Some(agg_fp(pred)),
            post_group_by: None,
        },
    ]
}

/// Everything one (regime, worker-count) run observes, including the
/// published tables in **storage layout order** — `ExtendibleHashTable::
/// iter` walks the arena, so comparing the pair sequence compares the
/// physical layout, not just the logical content.
#[derive(Debug, PartialEq)]
struct RunOutput {
    plans: Vec<(Schema, Vec<Row>, ExecMetrics)>,
    // Rendered pair sequences: raw-f64 accumulators make the derived
    // `PartialEq` useless under NaN (NaN != NaN), while the Debug rendering
    // is stable, NaN-tolerant and still distinguishes -0.0 from 0.0.
    join_table: String,
    join_stats: (usize, usize, usize, usize),
    agg_table: String,
    agg_stats: (usize, usize, usize, usize),
}

fn run_all(cat: &Catalog, pred: &PredBox, vectorize: bool, parallelism: usize) -> RunOutput {
    let htm = HtManager::unbounded();
    let temps = TempTableCache::unbounded();
    let mut out = Vec::new();
    for plan in plans(pred) {
        let mut ctx = ExecContext::new(cat, &htm, &temps)
            .with_parallelism(parallelism)
            .with_vectorize(vectorize);
        let (schema, rows) = execute(&plan, &mut ctx).expect("plan executes");
        out.push((schema, rows, ctx.metrics));
    }
    let jc = htm.candidates(&join_fp()).remove(0);
    let join_co = htm.checkout(jc.id).unwrap();
    let join_table = match join_co.table() {
        StoredHt::Join(ht) => {
            let pairs: Vec<(u64, TaggedRow)> = ht.iter().map(|(k, v)| (k, v.clone())).collect();
            format!("{pairs:?}")
        }
        other => panic!("join fingerprint stored {other:?}"),
    };
    let ac = htm.candidates(&agg_fp(pred)).remove(0);
    let agg_co = htm.checkout(ac.id).unwrap();
    let agg_table = match agg_co.table() {
        StoredHt::Agg(ht) => {
            let pairs: Vec<(u64, AggPayload)> = ht.iter().map(|(k, v)| (k, v.clone())).collect();
            format!("{pairs:?}")
        }
        other => panic!("aggregate fingerprint stored {other:?}"),
    };
    RunOutput {
        plans: out,
        join_table,
        join_stats: (jc.entries, jc.distinct_keys, jc.tuple_width, jc.bytes),
        agg_table,
        agg_stats: (ac.entries, ac.distinct_keys, ac.tuple_width, ac.bytes),
    }
}

/// The full differential matrix against the serial row oracle: semantic
/// equality across regimes, full-metric equality across worker counts
/// within each regime, and published-table layout identity everywhere.
fn assert_equivalent(cat: &Catalog, pred: &PredBox) {
    let oracle = run_all(cat, pred, false, 1);
    for vectorize in [false, true] {
        for workers in WORKERS {
            let run = run_all(cat, pred, vectorize, workers);
            let label = format!("vectorize={vectorize} workers={workers}");
            assert_eq!(run.plans.len(), oracle.plans.len());
            for (i, ((s, r, m), (os, or, om))) in run.plans.iter().zip(&oracle.plans).enumerate() {
                assert_eq!(s, os, "{label} plan {i}: schema");
                assert_eq!(r, or, "{label} plan {i}: rows (order included)");
                assert_eq!(
                    m.semantic(),
                    om.semantic(),
                    "{label} plan {i}: semantic metrics"
                );
            }
            assert_eq!(run.join_table, oracle.join_table, "{label}: join layout");
            assert_eq!(run.join_stats, oracle.join_stats, "{label}: join stats");
            assert_eq!(run.agg_table, oracle.agg_table, "{label}: agg layout");
            assert_eq!(run.agg_stats, oracle.agg_stats, "{label}: agg stats");
        }
        // Within one regime the *full* metrics (vectorized counters
        // included) must be worker-invariant.
        let serial = run_all(cat, pred, vectorize, 1);
        for workers in &WORKERS[1..] {
            let run = run_all(cat, pred, vectorize, *workers);
            for (i, ((_, _, m), (_, _, sm))) in run.plans.iter().zip(&serial.plans).enumerate() {
                assert_eq!(
                    m, sm,
                    "vectorize={vectorize} workers={workers} plan {i}: full metrics"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Leg 1: the proptest battery.
// ---------------------------------------------------------------------------

fn interval<S>(v: fn() -> S) -> impl Strategy<Value = Interval> + 'static
where
    S: Strategy<Value = Value> + 'static,
{
    prop_oneof![
        v().prop_map(Interval::eq),
        v().prop_map(Interval::at_least),
        v().prop_map(Interval::greater_than),
        v().prop_map(Interval::at_most),
        v().prop_map(Interval::less_than),
        (v(), v()).prop_map(|(a, b)| Interval::closed(a, b)),
        (v(), v()).prop_map(|(a, b)| Interval::half_open(a, b)),
    ]
}

fn int_val() -> impl Strategy<Value = Value> + 'static {
    (-25i64..25).prop_map(Value::Int)
}

fn float_val() -> impl Strategy<Value = Value> + 'static {
    (0usize..FLOATS.len()).prop_map(|i| Value::float(FLOATS[i]))
}

fn date_val() -> impl Strategy<Value = Value> + 'static {
    (0i32..35).prop_map(Value::Date)
}

fn str_val() -> impl Strategy<Value = Value> + 'static {
    // Dictionary members plus out-of-dictionary bounds on both sides.
    const BOUNDS: [&str; 6] = ["alpha", "beta", "delta", "gamma", "aa", "zz"];
    (0usize..BOUNDS.len()).prop_map(|i| Value::str(BOUNDS[i]))
}

/// One predicate per column type, plus a two-column conjunction (first
/// check scans, second refines).
fn pred_box() -> impl Strategy<Value = PredBox> {
    prop_oneof![
        interval(int_val).prop_map(|iv| PredBox::all().with("t.a", iv)),
        interval(float_val).prop_map(|iv| PredBox::all().with("t.f", iv)),
        interval(date_val).prop_map(|iv| PredBox::all().with("t.d", iv)),
        interval(str_val).prop_map(|iv| PredBox::all().with("t.s", iv)),
        (interval(int_val), interval(str_val))
            .prop_map(|(a, s)| PredBox::all().with("t.a", a).with("t.s", s)),
    ]
}

fn t_rows() -> impl Strategy<Value = Vec<TRow>> {
    proptest::collection::vec(
        (
            0i64..16,
            -20i64..20,
            0usize..FLOATS.len(),
            0i32..30,
            0usize..DICT.len(),
        ),
        40..160,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Every predicate op × column type, on random data, through all four
    // columnar plan shapes, at 1/4/8 workers, vectorized vs oracle.
    #[test]
    fn vectorized_matches_row_oracle(rows in t_rows(), pred in pred_box()) {
        let cat = build_catalog(&rows, 16);
        assert_equivalent(&cat, &pred);
    }
}

// ---------------------------------------------------------------------------
// Leg 2: large fixed run — the morsel fan-out genuinely engages, and the
// vectorized counters prove which path ran.
// ---------------------------------------------------------------------------

/// Deterministic splitmix-style generator (no external RNG dependency).
fn mix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn big_catalog() -> Catalog {
    let mut seed = 0x5eed_cafe_f00du64;
    let rows: Vec<TRow> = (0..24_576)
        .map(|_| {
            let r = mix(&mut seed);
            (
                (r % 4096) as i64,
                ((r >> 12) % 40) as i64 - 20,
                (r >> 18) as usize % FLOATS.len(),
                ((r >> 21) % 30) as i32,
                (r >> 26) as usize % DICT.len(),
            )
        })
        .collect();
    build_catalog(&rows, 4096)
}

#[test]
fn vectorized_matches_row_oracle_at_scale() {
    let cat = big_catalog();
    let pred = PredBox::all()
        .with("t.a", Interval::closed(Value::Int(-10), Value::Int(12)))
        .with("t.s", Interval::eq(Value::str("beta")));
    assert_equivalent(&cat, &pred);

    // The counters prove which interpreter ran: the columnar path batches
    // and filters, the oracle never touches either counter.
    let vectorized = run_all(&cat, &pred, true, 4);
    let oracle = run_all(&cat, &pred, false, 4);
    for (i, (_, _, m)) in vectorized.plans.iter().enumerate() {
        assert!(m.batches_processed > 0, "plan {i}: columnar path engaged");
        assert!(m.rows_filtered_vectorized > 0, "plan {i}: kernel filtering");
    }
    for (i, (_, _, m)) in oracle.plans.iter().enumerate() {
        assert_eq!(m.batches_processed, 0, "plan {i}: oracle stays row-wise");
        assert_eq!(m.rows_filtered_vectorized, 0, "plan {i}");
    }
}

// ---------------------------------------------------------------------------
// Leg 3: tight-GC-budget stress.
// ---------------------------------------------------------------------------

/// Deterministic publish/reuse sequence under a budget that forces
/// evictions. Because vectorized tables are byte-identical to the oracle's,
/// every eviction decision, reuse hit and cache counter must line up too —
/// any footprint drift would desynchronize the decision log.
#[test]
fn tight_gc_budget_sequence_is_regime_invariant() {
    let cat = big_catalog();
    let fp_for = |lo: i64, hi: i64| HtFingerprint {
        region: Region::from_box(PredBox::all().with(
            "dim.d_key",
            Interval::closed(Value::Int(lo), Value::Int(hi)),
        )),
        ..join_fp()
    };
    let build_scan = |lo: i64, hi: i64| {
        PhysicalPlan::Scan(
            ScanSpec::filtered(
                "dim",
                PredBox::all().with(
                    "dim.d_key",
                    Interval::closed(Value::Int(lo), Value::Int(hi)),
                ),
            )
            .project(&["dim.d_key", "dim.d_tag"]),
        )
    };
    let run = |vectorize: bool, parallelism: usize| {
        let htm = HtManager::new(GcConfig {
            budget_bytes: Some(96 * 1024),
            ..GcConfig::default()
        });
        let temps = TempTableCache::unbounded();
        let mut decisions = Vec::new();
        let mut results = Vec::new();
        // Visit each range twice back to back: the immediate revisit is
        // served from cache while the march across ranges forces the GC to
        // evict older tables under the tight budget.
        for i in 0..5i64 {
            for round in [0, 1] {
                let (lo, hi) = (i * 300, 1000 + i * 400);
                let fp = fp_for(lo, hi);
                // Candidates are structural matches; emulate the matcher's
                // exact case by requiring region equality.
                let cand = htm
                    .candidates(&fp)
                    .into_iter()
                    .find(|c| c.fingerprint.region.set_eq(&fp.region));
                decisions.push((round, i, cand.is_some()));
                let plan = match cand {
                    Some(c) => PhysicalPlan::HashJoin {
                        probe: Box::new(PhysicalPlan::Scan(ScanSpec::full("t"))),
                        build: None,
                        probe_key: "t.k".into(),
                        build_key: "dim.d_key".into(),
                        reuse: Some(ReuseSpec {
                            id: c.id,
                            case: ReuseCase::Exact,
                            post_filter: None,
                            request_region: fp.region.clone(),
                            cached_region: fp.region.clone(),
                            schema: c.schema.clone(),
                        }),
                        publish: None,
                    },
                    None => PhysicalPlan::HashJoin {
                        probe: Box::new(PhysicalPlan::Scan(ScanSpec::full("t"))),
                        build: Some(Box::new(build_scan(lo, hi))),
                        probe_key: "t.k".into(),
                        build_key: "dim.d_key".into(),
                        reuse: None,
                        publish: Some(fp.clone()),
                    },
                };
                let mut ctx = ExecContext::new(&cat, &htm, &temps)
                    .with_parallelism(parallelism)
                    .with_vectorize(vectorize);
                let (schema, rows) = execute(&plan, &mut ctx).expect("survives eviction");
                results.push((schema, rows, ctx.metrics.semantic()));
            }
        }
        (decisions, results, htm.stats())
    };
    let (decisions, results, stats) = run(false, 1);
    assert!(
        stats.evictions > 0,
        "budget is tight enough to evict: {stats:?}"
    );
    assert!(
        decisions.iter().any(|&(_, _, hit)| hit),
        "some ranges are re-served from cache"
    );
    for vectorize in [false, true] {
        for workers in WORKERS {
            let (d, r, s) = run(vectorize, workers);
            let label = format!("vectorize={vectorize} workers={workers}");
            assert_eq!(d, decisions, "{label}: reuse/rebuild decision log");
            assert_eq!(r, results, "{label}: results + semantic metrics");
            assert_eq!(s, stats, "{label}: cache counters and footprint");
        }
    }
}

/// Engine-level race: parallel sessions under a tight budget with
/// vectorization on and off must both match the serial no-reuse reference.
#[test]
fn vectorized_engine_races_eviction_correctly() {
    let mk_query = |id: u32, k: i64| {
        QueryBuilder::new(id)
            .join("dim", "dim.d_key", "t", "t.k")
            .filter(
                "dim.d_key",
                Interval::closed(Value::Int(200 * k), Value::Int(1500 + 200 * k)),
            )
            .group_by("dim.d_tag")
            .agg(AggExpr::new(AggFunc::Count, "t.k"))
            .build()
            .unwrap()
    };
    let reference = Database::builder(big_catalog())
        .strategy(EngineStrategy::NoReuse)
        .parallelism(1)
        .build();
    let mut ref_session = reference.session();
    let expected: Vec<Vec<Row>> = (0..6)
        .map(|k| {
            let mut rows = ref_session
                .execute(&mk_query(900 + k, k as i64))
                .unwrap()
                .rows;
            rows.sort();
            rows
        })
        .collect();
    let expected = Arc::new(expected);
    for vectorize in [true, false] {
        let db = Database::builder(big_catalog())
            .gc_budget(128 * 1024)
            .parallelism(4)
            .vectorize(vectorize)
            .build();
        assert_eq!(db.vectorize(), vectorize);
        std::thread::scope(|s| {
            for t in 0..3u32 {
                let db = Arc::clone(&db);
                let expected = Arc::clone(&expected);
                s.spawn(move || {
                    let mut session = db.session();
                    for round in 0..4u32 {
                        let k = ((t + round) % 6) as usize;
                        let q = mk_query(t * 100 + round, k as i64);
                        let mut rows = session.execute(&q).expect("query survives eviction").rows;
                        rows.sort();
                        assert_eq!(rows, expected[k], "vectorize={vectorize} t={t} r={round}");
                    }
                });
            }
        });
        let (audit_bytes, audit_entries) = db.cache().audit();
        let stats = db.cache_stats();
        assert_eq!(stats.bytes, audit_bytes, "vectorize={vectorize}: audit");
        assert_eq!(stats.entries, audit_entries);
    }
}
