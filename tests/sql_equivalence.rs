//! The SQL front end must be **downstream-indistinguishable** from the
//! fluent [`QueryBuilder`]: a query written as text and the same query
//! assembled by hand lower to the same `QuerySpec`, and two engines fed
//! the two forms produce identical rows, semantic metrics, reuse
//! decisions and cache counters — in both vectorize regimes.
//!
//! This is the umbrella-level differential check behind the serving front
//! end: if it holds, every guarantee the engine-level suites establish for
//! built queries transfers to queries arriving over the wire.

use hashstash::Database;
use hashstash_plan::{AggExpr, AggFunc, Interval, QueryBuilder, QuerySpec};
use hashstash_server::CatalogSchema;
use hashstash_sql::parse_query;
use hashstash_storage::tpch::{generate, TpchConfig};
use hashstash_types::{date::parse_date, Value};

fn date(s: &str) -> Value {
    Value::Date(parse_date(s).expect("literal date"))
}

/// The workload: each entry is (SQL text, the hand-built equivalent).
/// The sequence is reuse-heavy on purpose — repeats hit the cache exactly,
/// widened ranges subsume — so the comparison also covers the reuse path,
/// not just cold execution.
fn workload() -> Vec<(String, QuerySpec)> {
    let scan = |id: u32, hi: i64| {
        (
            format!("SELECT c_custkey, c_age FROM customer WHERE c_age <= {hi}"),
            QueryBuilder::new(id)
                .table("customer")
                .filter("customer.c_age", Interval::at_most(Value::Int(hi)))
                .project(&["customer.c_custkey", "customer.c_age"])
                .build()
                .unwrap(),
        )
    };
    let join = |id: u32, cut: &str| {
        (
            format!(
                "SELECT c_age, SUM(l_quantity) FROM customer \
                 JOIN orders ON customer.c_custkey = orders.o_custkey \
                 JOIN lineitem ON orders.o_orderkey = lineitem.l_orderkey \
                 WHERE o_orderdate < '{cut}' GROUP BY c_age"
            ),
            QueryBuilder::new(id)
                .join(
                    "customer",
                    "customer.c_custkey",
                    "orders",
                    "orders.o_custkey",
                )
                .join(
                    "orders",
                    "orders.o_orderkey",
                    "lineitem",
                    "lineitem.l_orderkey",
                )
                .filter("orders.o_orderdate", Interval::less_than(date(cut)))
                .group_by("customer.c_age")
                .agg(AggExpr::new(AggFunc::Sum, "lineitem.l_quantity"))
                .build()
                .unwrap(),
        )
    };
    let agg = |id: u32, lo: i64| {
        (
            format!(
                "SELECT c_age, COUNT(c_custkey), AVG(c_acctbal) FROM customer \
                 WHERE c_age >= {lo} GROUP BY c_age"
            ),
            QueryBuilder::new(id)
                .table("customer")
                .filter("customer.c_age", Interval::at_least(Value::Int(lo)))
                .group_by("customer.c_age")
                .agg(AggExpr::new(AggFunc::Count, "customer.c_custkey"))
                .agg(AggExpr::new(AggFunc::Avg, "customer.c_acctbal"))
                .build()
                .unwrap(),
        )
    };
    vec![
        scan(1, 40),
        join(2, "1994-06-01"),
        agg(3, 30),
        // Exact repeats: served from cache on both sides or neither.
        join(4, "1994-06-01"),
        agg(5, 30),
        // Widened ranges: subsumption reuse of the earlier builds.
        scan(6, 55),
        join(7, "1995-03-01"),
        agg(8, 25),
    ]
}

fn fresh_db(vectorize: bool) -> std::sync::Arc<Database> {
    Database::builder(generate(TpchConfig::new(0.005, 1234)))
        .parallelism(2)
        .vectorize(vectorize)
        .build()
}

#[test]
fn sql_and_builder_queries_are_indistinguishable() {
    for vectorize in [false, true] {
        let sql_db = fresh_db(vectorize);
        let hand_db = fresh_db(vectorize);
        let mut sql_session = sql_db.session();
        let mut hand_session = hand_db.session();

        for (i, (sql, hand)) in workload().into_iter().enumerate() {
            let parsed = parse_query(&sql, hand.id.0, &CatalogSchema(sql_db.catalog()))
                .unwrap_or_else(|e| panic!("{sql}: {}", e.render(&sql)));
            // Strongest form first: the lowered spec *is* the built spec.
            assert_eq!(parsed, hand, "vectorize={vectorize} query {i}: spec");

            let a = sql_session.execute(&parsed).expect("sql-path query");
            let b = hand_session.execute(&hand).expect("hand-path query");
            let label = format!("vectorize={vectorize} query {i}");
            assert_eq!(a.schema, b.schema, "{label}: schema");
            assert_eq!(a.rows, b.rows, "{label}: rows (order included)");
            assert_eq!(
                a.metrics.semantic(),
                b.metrics.semantic(),
                "{label}: semantic metrics"
            );
            assert_eq!(a.decisions, b.decisions, "{label}: reuse decisions");
        }

        // The engines saw identical work, so the caches must agree on
        // every counter — publishes, reuses, bytes, entries.
        let (s, h) = (sql_db.cache_stats(), hand_db.cache_stats());
        assert_eq!(s.publishes, h.publishes, "vectorize={vectorize}: publishes");
        assert_eq!(s.reuses, h.reuses, "vectorize={vectorize}: reuses");
        assert_eq!(s.evictions, h.evictions, "vectorize={vectorize}: evictions");
        assert_eq!(s.bytes, h.bytes, "vectorize={vectorize}: cached bytes");
        assert_eq!(
            s.entries, h.entries,
            "vectorize={vectorize}: cached entries"
        );
        assert!(s.reuses > 0, "workload produced no reuse; test is vacuous");
    }
}
