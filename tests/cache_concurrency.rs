//! Concurrency and leak-safety tests for the sharded, `Arc`-backed Hash
//! Table Manager.
//!
//! * **Leak regression** (the PR's headline bugfix): an executor error
//!   between checkout and check-in used to drop the `CheckedOut` value and
//!   strand the cache entry — never a candidate again, never evictable,
//!   still charged to the GC budget. The RAII guard must return the table
//!   instead, on both read-only and mutating reuse paths.
//! * **Shared readers**: exact-match reuse is a handle clone; any number of
//!   checkouts coexist, which is what lets sessions execute concurrently.
//! * **Shard contention stress**: 8 threads × mixed exact/partial reuse
//!   under a tight GC budget; at quiesce the atomic statistics must agree
//!   exactly with a recount of the shard contents (no lost bytes).

use std::sync::{Arc, Barrier};
use std::thread;

use hashstash_cache::{EvictionPolicy, GcConfig, HtManager, StoredHt, TaggedRow};
use hashstash_exec::plan::{PhysicalPlan, ReuseSpec, ScanSpec};
use hashstash_exec::{execute, ExecContext, TempTableCache};
use hashstash_hashtable::ExtendibleHashTable;
use hashstash_plan::{HtFingerprint, HtKind, Interval, PredBox, Region, ReuseCase};
use hashstash_storage::tpch::{generate, TpchConfig};
use hashstash_types::{DataType, Field, Row, Schema, Value};

fn customer_fp(lo: i64, hi: i64) -> HtFingerprint {
    HtFingerprint {
        kind: HtKind::JoinBuild,
        tables: std::iter::once(Arc::from("customer")).collect(),
        edges: vec![],
        region: Region::from_box(PredBox::all().with(
            "customer.c_age",
            Interval::closed(Value::Int(lo), Value::Int(hi)),
        )),
        key_attrs: vec![Arc::from("customer.c_custkey")],
        payload_attrs: vec![Arc::from("customer.c_custkey"), Arc::from("customer.c_age")],
        aggregates: vec![],
        tagged: false,
    }
}

fn join_table(n: u64) -> StoredHt {
    let mut ht = ExtendibleHashTable::new(16);
    for i in 0..n {
        ht.insert(
            i,
            TaggedRow::untagged(Row::new(vec![Value::Int(i as i64), Value::Int(30)])),
        );
    }
    StoredHt::Join(ht)
}

fn join_schema() -> Schema {
    Schema::new(vec![
        Field::new("customer.c_custkey", DataType::Int),
        Field::new("customer.c_age", DataType::Int),
    ])
}

/// Headline bugfix: an executor error *after* checkout (here: the cached
/// table has the wrong kind for the operator) must check the table back in
/// on the error path. Pre-PR, the dropped `CheckedOut` left `ht: None`
/// forever: unavailable, not a candidate, yet still counted in
/// `CacheStats.bytes`.
#[test]
fn executor_error_path_returns_checked_out_table() {
    let cat = generate(TpchConfig::new(0.002, 5));
    let htm = HtManager::unbounded();
    let temps = TempTableCache::unbounded();

    // An *aggregate* payload published under a join-build fingerprint: the
    // join operator checks it out, then errors on the kind mismatch.
    let mut agg = ExtendibleHashTable::new(16);
    agg.insert(
        1,
        hashstash_cache::AggPayload::new(Row::new(vec![Value::Int(1)]), &[]),
    );
    let fp = customer_fp(0, 100);
    let id = htm.publish(fp.clone(), join_schema(), StoredHt::Agg(agg));
    let bytes_before = htm.stats().bytes;
    assert!(bytes_before > 0);

    let plan = PhysicalPlan::HashJoin {
        probe: Box::new(PhysicalPlan::Scan(ScanSpec::full("orders"))),
        build: None,
        probe_key: "orders.o_custkey".into(),
        build_key: "customer.c_custkey".into(),
        reuse: Some(ReuseSpec {
            id,
            case: ReuseCase::Exact,
            post_filter: None,
            request_region: fp.region.clone(),
            cached_region: fp.region.clone(),
            schema: join_schema(),
        }),
        publish: None,
    };
    let mut ctx = ExecContext::new(&cat, &htm, &temps);
    assert!(
        execute(&plan, &mut ctx).is_err(),
        "kind mismatch must error"
    );

    // The table came back: available, a candidate again, bytes accounted.
    assert!(htm.is_available(id), "error path returned the table");
    assert_eq!(htm.candidates(&fp).len(), 1, "candidate again");
    assert_eq!(htm.stats().bytes, bytes_before, "bytes still accounted");
    let (audit_bytes, audit_entries) = htm.audit();
    assert_eq!(audit_bytes, htm.stats().bytes);
    assert_eq!(audit_entries, 1);
    // The pin counter agrees: the error path returned the guard.
    #[cfg(feature = "analysis")]
    htm.assert_quiesced();
}

/// Same property on the *mutating* (partial reuse) path: the executor
/// errors after `checkout_mut` while inserting the delta (build schema
/// mismatch). The guard must abandon the private copy and leave the cached
/// version untouched and available.
#[test]
fn mutating_error_path_keeps_cached_version() {
    let cat = generate(TpchConfig::new(0.002, 5));
    let htm = HtManager::unbounded();
    let temps = TempTableCache::unbounded();

    let fp = customer_fp(40, 60);
    let id = htm.publish(fp.clone(), join_schema(), join_table(10));
    let bytes_before = htm.stats().bytes;

    // The delta build plan scans *all* customer columns, which mismatches
    // the cached two-column schema — an error after the exclusive checkout.
    let plan = PhysicalPlan::HashJoin {
        probe: Box::new(PhysicalPlan::Scan(ScanSpec::full("orders"))),
        build: Some(Box::new(PhysicalPlan::Scan(ScanSpec::full("customer")))),
        probe_key: "orders.o_custkey".into(),
        build_key: "customer.c_custkey".into(),
        reuse: Some(ReuseSpec {
            id,
            case: ReuseCase::Partial,
            post_filter: None,
            request_region: customer_fp(30, 60).region.clone(),
            cached_region: fp.region.clone(),
            schema: join_schema(),
        }),
        publish: None,
    };
    let mut ctx = ExecContext::new(&cat, &htm, &temps);
    assert!(
        execute(&plan, &mut ctx).is_err(),
        "schema mismatch must error"
    );

    assert!(htm.is_available(id), "writer guard released on error");
    let cands = htm.candidates(&fp);
    assert_eq!(cands.len(), 1);
    assert_eq!(cands[0].entries, 10, "cached version untouched");
    assert!(
        cands[0].fingerprint.region.set_eq(&fp.region),
        "lineage not widened by the failed attempt"
    );
    assert_eq!(htm.stats().bytes, bytes_before, "bytes still accounted");
    // And the table is still fully usable.
    let w = htm.checkout_mut(id).unwrap();
    drop(w);
    // Both the failed attempt and the probe guard were returned.
    #[cfg(feature = "analysis")]
    htm.assert_quiesced();
}

/// Exact-match reuse is genuinely concurrent: all eight threads hold a
/// shared checkout of the *same* table at the same time (the barrier can
/// only be passed while every guard is live) and probe it in parallel.
/// Under the pre-PR exclusive-ownership protocol the second checkout
/// would have failed and this test could never pass.
#[test]
fn shared_checkouts_of_one_table_coexist_across_threads() {
    const THREADS: usize = 8;
    let htm = Arc::new(HtManager::unbounded());
    let id = htm.publish(customer_fp(0, 100), join_schema(), join_table(256));
    let barrier = Arc::new(Barrier::new(THREADS));

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let htm = Arc::clone(&htm);
            let barrier = Arc::clone(&barrier);
            // Raw spawns model independent client sessions (see clippy.toml).
            #[allow(clippy::disallowed_methods)]
            thread::spawn(move || {
                let co = htm.checkout(id).expect("shared checkout never blocks");
                // Every thread holds its guard here simultaneously.
                barrier.wait();
                let StoredHt::Join(t) = co.table() else {
                    panic!("join table")
                };
                let mut hits = 0usize;
                for k in 0..256u64 {
                    hits += t.probe_readonly(k).count();
                }
                hits
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().expect("no panics"), 256);
    }
    assert!(htm.is_available(id));
    assert_eq!(htm.stats().reuses, THREADS as u64);
    // All eight shared guards dropped cleanly.
    #[cfg(feature = "analysis")]
    htm.assert_quiesced();
}

/// 8 threads × mixed exact/partial reuse over several plan shapes under a
/// tight GC budget: no operation may lose bytes — at quiesce the atomic
/// `CacheStats` must agree exactly with a recount of every shard, and the
/// budget must hold.
#[test]
fn shard_contention_stress_no_lost_bytes() {
    const THREADS: usize = 8;
    const OPS: usize = 60;

    fn shaped_fp(shape: usize, lo: i64, hi: i64) -> HtFingerprint {
        let table: Arc<str> = Arc::from(format!("t{shape}"));
        let key: Arc<str> = Arc::from(format!("t{shape}.k"));
        let attr: Arc<str> = Arc::from(format!("t{shape}.v"));
        HtFingerprint {
            kind: HtKind::JoinBuild,
            tables: std::iter::once(table).collect(),
            edges: vec![],
            region: Region::from_box(PredBox::all().with(
                attr.to_string(),
                Interval::closed(Value::Int(lo), Value::Int(hi)),
            )),
            key_attrs: vec![key.clone()],
            payload_attrs: vec![key],
            aggregates: vec![],
            tagged: false,
        }
    }

    let budget = join_table(64).logical_bytes() * 6;
    let htm = Arc::new(HtManager::with_shards(
        GcConfig {
            budget_bytes: Some(budget),
            policy: EvictionPolicy::Lru,
            ..GcConfig::default()
        },
        8,
    ));
    let barrier = Arc::new(Barrier::new(THREADS));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let htm = Arc::clone(&htm);
            let barrier = Arc::clone(&barrier);
            #[allow(clippy::disallowed_methods)]
            thread::spawn(move || {
                barrier.wait();
                for i in 0..OPS {
                    let shape = (t + i) % 5;
                    let lo = ((t * 7 + i * 3) % 40) as i64;
                    let fp = shaped_fp(shape, lo, lo + 10);
                    // Publish under GC pressure.
                    htm.publish(fp.clone(), join_schema(), join_table(64));
                    // Mixed reuse against whatever is currently cached.
                    let cands = htm.candidates(&shaped_fp(shape, 0, 60));
                    if let Some(c) = cands.first() {
                        if i % 3 == 0 {
                            // Partial-style mutating reuse: COW, widen, publish.
                            if let Ok(mut co) = htm.checkout_mut(c.id) {
                                if let Ok(StoredHt::Join(tab)) = co.table_mut() {
                                    let base = 1000 + i as u64;
                                    tab.insert(
                                        base,
                                        TaggedRow::untagged(Row::new(vec![
                                            Value::Int(base as i64),
                                            Value::Int(30),
                                        ])),
                                    );
                                }
                                co.fingerprint.region = co.fingerprint.region.union(&fp.region);
                                co.checkin().expect("entry is pinned, checkin succeeds");
                            }
                        } else {
                            // Exact-style shared reuse: concurrent readers.
                            if let Ok(co) = htm.checkout(c.id) {
                                assert!(!co.table().is_empty());
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no thread panicked");
    }

    // Quiesce: with the `analysis` feature on, the pin-leak detector runs
    // first — every checkout guard across all 480 mixed-mode ops must have
    // been returned before the byte accounting is trusted.
    #[cfg(feature = "analysis")]
    htm.assert_quiesced();

    // Quiesce: nothing is checked out, so the stats must be exact.
    let stats = htm.stats();
    let (audit_bytes, audit_entries) = htm.audit();
    assert_eq!(
        stats.bytes, audit_bytes,
        "atomic byte accounting drifted from shard contents"
    );
    assert_eq!(stats.entries, audit_entries, "entry count drifted");
    htm.enforce_budget();
    assert!(
        htm.stats().bytes <= budget,
        "budget holds at quiesce ({} > {budget})",
        htm.stats().bytes
    );
    // Every op published exactly once; each call either created an entry
    // or deduplicated onto an identical lineage still in cache. The two
    // counters must account for every call — no drops, no double counts.
    assert_eq!(
        stats.publishes + stats.publish_dedups,
        (THREADS * OPS) as u64,
        "publish accounting drifted (publishes={}, dedups={})",
        stats.publishes,
        stats.publish_dedups
    );
    assert!(stats.publishes > 0);
}

/// A session executes (and reuses) while another client holds a shared
/// checkout of a cached table — impossible under the pre-PR design, where
/// one mutex was held from optimization through execution.
#[test]
fn session_executes_while_cache_handle_is_held() {
    use hashstash::Database;
    use hashstash_plan::{AggExpr, AggFunc, QueryBuilder};

    let db = Database::open(generate(TpchConfig::new(0.003, 99)));
    let q = |id: u32| {
        QueryBuilder::new(id)
            .join(
                "customer",
                "customer.c_custkey",
                "orders",
                "orders.o_custkey",
            )
            .filter(
                "customer.c_age",
                Interval::closed(Value::Int(20), Value::Int(60)),
            )
            .group_by("customer.c_age")
            .agg(AggExpr::new(AggFunc::Count, "orders.o_orderkey"))
            .build()
            .unwrap()
    };
    // Warm the cache, then pin one of the published tables from outside any
    // session, exactly like a long-running reader would.
    let warm = db.session().execute(&q(1)).unwrap();
    // Ids encode their home shard (`raw * shards + shard`), so just scan a
    // small prefix of the id space for the tables the warm query published.
    let seeded: Vec<_> = (1..=256)
        .map(hashstash_types::HtId)
        .filter(|&id| db.cache().is_available(id))
        .collect();
    assert!(!seeded.is_empty(), "warm query published tables");
    let _held = db.cache().checkout(seeded[0]).unwrap();

    // A fresh session still executes — and still gets cache hits — while
    // the handle is held on another "thread".
    let db2 = Arc::clone(&db);
    #[allow(clippy::disallowed_methods)]
    let (rows, reused) = thread::spawn(move || {
        let mut s = db2.session();
        let r = s.execute(&q(2)).unwrap();
        (r.rows.len(), r.decisions.iter().any(|(_, c)| c.is_some()))
    })
    .join()
    .unwrap();
    assert_eq!(rows, warm.rows.len());
    assert!(reused, "read-only reuse proceeds despite the held handle");
}
