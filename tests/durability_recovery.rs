//! Durability integration tests: warm restart end-to-end, torn-WAL
//! torture, golden hash pinning, the clean-shutdown contract, and the
//! snapshot persistence bar.
//!
//! The torture test is the subsystem's core safety claim: truncating the
//! WAL at **every byte offset** of the log must leave recovery with a
//! clean prefix of history — never a panic, never an error, and the
//! reopened log must accept appends.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use hashstash::{Database, EngineStrategy};
use hashstash_cache::recycle::ShapeKey;
use hashstash_durability::{
    read_snapshot, Durability, DurabilityConfig, FsyncPolicy, Wal, WAL_MAGIC,
};
use hashstash_plan::{
    AggExpr, AggFunc, HtFingerprint, HtKind, Interval, JoinEdge, QueryBuilder, QuerySpec, Region,
};
use hashstash_storage::tpch::{generate, TpchConfig};
use hashstash_storage::{Catalog, Table, TableBuilder};
use hashstash_types::value::fnv1a;
use hashstash_types::{DataType, Value};

fn catalog() -> Catalog {
    generate(TpchConfig::new(0.002, 77))
}

fn q3(id: u32, ship: &str) -> QuerySpec {
    QueryBuilder::new(id)
        .join(
            "customer",
            "customer.c_custkey",
            "orders",
            "orders.o_custkey",
        )
        .join(
            "orders",
            "orders.o_orderkey",
            "lineitem",
            "lineitem.l_orderkey",
        )
        .filter(
            "lineitem.l_shipdate",
            Interval::at_least(Value::Date(
                hashstash_types::date::parse_date(ship).unwrap(),
            )),
        )
        .group_by("customer.c_age")
        .agg(AggExpr::new(AggFunc::Sum, "lineitem.l_quantity"))
        .build()
        .unwrap()
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hashstash-it-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn tiny(name: &str, rows: i64) -> Table {
    let mut b = TableBuilder::new(name, vec![("x", DataType::Int)]);
    for i in 0..rows {
        b.push_row(vec![Value::Int(i)]);
    }
    b.finish()
}

/// End-to-end warm restart: populate a durable engine, exit cleanly,
/// reopen with an *empty* catalog. The recovered engine answers with the
/// recovered catalog, reuses rehydrated hash tables on its very first
/// query, and its cache accounting satisfies `stats == audit()`.
#[test]
fn warm_restart_reuses_rehydrated_tables() {
    let dir = fresh_dir("warm");
    let expected_rows;
    {
        let db = Database::builder(catalog()).data_dir(&dir).build();
        let mut session = db.session();
        session.execute(&q3(1, "1996-06-01")).unwrap();
        let r = session.execute(&q3(2, "1996-01-01")).unwrap();
        expected_rows = r.rows.len();
        assert!(db.cache_stats().publishes > 0);
        db.flush().unwrap();
    }
    let db = Database::builder(Catalog::new()).data_dir(&dir).build();
    assert!(db.catalog().get("lineitem").is_ok(), "catalog recovered");
    assert!(db.cache_stats().entries > 0, "cache rehydrated");
    let (audit_bytes, audit_entries) = db.cache().audit();
    assert_eq!(db.cache_stats().bytes, audit_bytes, "stats == audit");
    assert_eq!(db.cache_stats().entries, audit_entries);

    let mut session = db.session();
    let r = session.execute(&q3(3, "1996-01-01")).unwrap();
    assert!(
        r.decisions.iter().any(|(_, c)| c.is_some()),
        "first post-restart query reuses a rehydrated table: {:?}",
        r.decisions
    );
    assert_eq!(r.rows.len(), expected_rows, "same answer as before restart");
    drop(db);
    fs::remove_dir_all(&dir).ok();
}

/// Truncate the WAL at every byte offset; recovery must always succeed
/// with exactly the records whose frames fit the prefix, and the reopened
/// log must accept (and then replay) further appends.
#[test]
fn torn_wal_truncated_at_every_offset_recovers() {
    let dir = fresh_dir("torture");
    let cfg = || DurabilityConfig {
        dir: dir.clone(),
        fsync: FsyncPolicy::None,
        persist_min_benefit: 0.0,
    };
    {
        let (d, _rec) = Durability::open(cfg()).unwrap();
        d.log_table_load(&tiny("a", 2)).unwrap();
        d.log_table_load(&tiny("b", 3)).unwrap();
        d.log_table_load(&tiny("c", 4)).unwrap();
        d.sync().unwrap();
    }
    let wal = dir.join("wal-000000.log");
    let original = fs::read(&wal).unwrap();

    // Frame boundaries: offset just past each complete record.
    let mut bounds = Vec::new();
    let mut pos = WAL_MAGIC.len();
    while pos + 8 <= original.len() {
        let len = u32::from_le_bytes(original[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 8 + len;
        bounds.push(pos);
    }
    assert_eq!(bounds.len(), 3);
    assert_eq!(*bounds.last().unwrap(), original.len());

    for cut in 0..=original.len() {
        fs::write(&wal, &original[..cut]).unwrap();
        let (d, rec) = Durability::open(cfg())
            .unwrap_or_else(|e| panic!("recovery failed at offset {cut}: {e}"));
        let expect = bounds.iter().filter(|&&b| b <= cut).count();
        assert_eq!(
            rec.wal_records, expect,
            "offset {cut}: prefix of history has {expect} records"
        );
        assert_eq!(rec.catalog.len(), expect, "offset {cut}: catalog matches");
        // The truncated log accepts appends and replays them afterwards.
        d.log_table_load(&tiny("z", 1)).unwrap();
        d.sync().unwrap();
        drop(d);
        let (_d, rec) = Durability::open(cfg()).unwrap();
        assert_eq!(rec.wal_records, expect + 1, "offset {cut}: append survives");
        assert!(
            !rec.torn_wal,
            "offset {cut}: tail is clean after truncation"
        );
    }
    fs::remove_dir_all(&dir).ok();
}

/// Pin the hash values the on-disk formats and the shard routing depend
/// on. These must be identical in every process, on every architecture,
/// and across toolchain upgrades — a drift here silently orphans
/// persisted fingerprints.
#[test]
fn golden_hashes_are_stable_across_processes() {
    // FNV-1a (the basis of Value::key64 and ShapeKey::stable_hash).
    assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(fnv1a(b"hashstash"), 0xc60a_94af_dc5f_7f4e);

    // Value::key64 for each data type.
    assert_eq!(Value::Int(42).key64(), 42);
    assert_eq!(Value::Int(-1).key64(), u64::MAX);
    assert_eq!(Value::Date(7300).key64(), 7300);
    assert_eq!(Value::float(1.5).key64(), 1.5f64.to_bits());
    assert_eq!(Value::Str("BUILDING".into()).key64(), fnv1a(b"BUILDING"));

    // ShapeKey::stable_hash of a canonical join fingerprint (shard
    // routing; also what keeps rehydrated entries findable).
    let fp = HtFingerprint {
        kind: HtKind::JoinBuild,
        tables: ["customer", "orders"]
            .into_iter()
            .map(std::sync::Arc::from)
            .collect(),
        edges: vec![JoinEdge::new(
            "customer",
            "customer.c_custkey",
            "orders",
            "orders.o_custkey",
        )],
        region: Region::all(),
        key_attrs: vec![std::sync::Arc::from("customer.c_custkey")],
        payload_attrs: vec![std::sync::Arc::from("customer.c_age")],
        aggregates: vec![],
        tagged: false,
    };
    assert_eq!(ShapeKey::of(&fp).stable_hash(), 0x6894_58a4_d0e0_8586);
}

/// Clean-shutdown contract: dropping the last handle flushes, leaving
/// exactly one valid snapshot and one fresh, torn-free WAL segment.
#[test]
fn clean_shutdown_leaves_one_snapshot_and_a_clean_wal() {
    let dir = fresh_dir("clean");
    {
        let db = Database::builder(catalog()).data_dir(&dir).build();
        let mut session = db.session();
        session.execute(&q3(1, "1996-06-01")).unwrap();
        // No explicit flush: Drop must do it.
    }
    let mut snaps = Vec::new();
    let mut wals = Vec::new();
    for entry in fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        match path.extension().and_then(|e| e.to_str()) {
            Some("snap") => snaps.push(path),
            Some("log") => wals.push(path),
            _ => {}
        }
    }
    assert_eq!(snaps.len(), 1, "exactly one snapshot after clean exit");
    assert_eq!(wals.len(), 1, "exactly one WAL segment after clean exit");
    let snap = read_snapshot(&snaps[0]).expect("snapshot validates");
    assert!(!snap.catalog.is_empty());
    assert!(!snap.entries.is_empty(), "cache entries persisted");
    let replay = Wal::replay(&wals[0]).unwrap();
    assert!(!replay.torn, "no torn tail after clean exit");
    assert!(replay.records.is_empty(), "fresh segment after rotation");
    fs::remove_dir_all(&dir).ok();
}

/// The persistence bar filters what snapshots keep: an unreachable bar
/// persists no cache entries (while the catalog always survives), and the
/// default bar of zero persists them all.
#[test]
fn persistence_bar_filters_cache_entries() {
    let dir = fresh_dir("bar");
    {
        let db = Database::builder(catalog())
            .data_dir(&dir)
            .persist_min_benefit(f64::MAX)
            .build();
        let mut session = db.session();
        session.execute(&q3(1, "1996-06-01")).unwrap();
        session.execute(&q3(2, "1996-01-01")).unwrap();
        assert!(db.cache_stats().entries > 0);
    }
    let db = Database::builder(Catalog::new()).data_dir(&dir).build();
    assert!(
        db.catalog().get("lineitem").is_ok(),
        "catalog still recovers"
    );
    assert_eq!(
        db.cache_stats().entries,
        0,
        "nothing clears an unreachable bar"
    );
    drop(db);
    fs::remove_dir_all(&dir).ok();

    // Strategy sanity: the materialized baseline's temp tables persist and
    // rehydrate the same way.
    let dir = fresh_dir("bar-temp");
    {
        let db = Database::builder(catalog())
            .data_dir(&dir)
            .strategy(EngineStrategy::Materialized)
            .build();
        let mut session = db.session();
        session.execute(&q3(1, "1996-06-01")).unwrap();
        assert!(db.temp_stats().publishes > 0);
    }
    let db = Database::builder(Catalog::new()).data_dir(&dir).build();
    assert!(
        db.temp_stats().entries > 0,
        "temp-table entries rehydrated: {:?}",
        db.temp_stats()
    );
    drop(db);
    fs::remove_dir_all(&dir).ok();
}

/// Regression: warm restart + TTL expiry. Rehydration re-publishes the
/// snapshot through the normal admission path, which ticks the shared
/// clock once per entry — so the earliest entries came out of recovery
/// already "idle" by rehydration order. With a TTL configured, the first
/// sweep after restart used to expire exactly the warm cache the restart
/// had just paid to rebuild. Recovery now restamps every rehydrated entry
/// and restarts the sweep throttle, so warm tables survive until they are
/// *actually* idle for a TTL — and then expire normally.
#[test]
fn restart_with_ttl_keeps_warm_cache_until_actually_idle() {
    const TTL: u64 = 4;
    let gc = hashstash_cache::GcConfig {
        ttl_ticks: Some(TTL),
        ..hashstash_cache::GcConfig::default()
    };
    // Synthetic cache entries with pairwise-disjoint fingerprints: query
    // execution reuses/widens aggressively (one entry per shape), so
    // staging "more entries than TTL ticks" needs direct publishes.
    let warm_fp = |i: i64| HtFingerprint {
        kind: HtKind::JoinBuild,
        tables: std::iter::once(Arc::<str>::from("customer")).collect(),
        edges: vec![],
        region: Region::from_box(hashstash_plan::PredBox::all().with(
            "customer.c_custkey".to_string(),
            Interval::closed(Value::Int(i * 100), Value::Int(i * 100 + 99)),
        )),
        key_attrs: vec![Arc::from("customer.c_custkey")],
        payload_attrs: vec![Arc::from("customer.c_custkey")],
        aggregates: vec![],
        tagged: false,
    };
    let warm_ht = || {
        let mut t = hashstash_hashtable::ExtendibleHashTable::new(16);
        for i in 0..32u64 {
            t.insert(
                i,
                hashstash_cache::TaggedRow::untagged(hashstash_types::Row::new(vec![Value::Int(
                    i as i64,
                )])),
            );
        }
        hashstash_cache::StoredHt::Join(t)
    };
    let warm_schema = hashstash_types::Schema::new(vec![hashstash_types::Field::new(
        "customer.c_custkey",
        DataType::Int,
    )]);

    // A single-table aggregate with a varying filter: each execution
    // (re)uses and widens one agg hash table, ticking the shared clock.
    let ticker = |id: u32, cut: i64| {
        QueryBuilder::new(id)
            .table("customer")
            .filter("customer.c_custkey", Interval::at_most(Value::Int(cut)))
            .group_by("customer.c_age")
            .agg(AggExpr::new(AggFunc::Count, "customer.c_custkey"))
            .build()
            .unwrap()
    };

    let dir = fresh_dir("ttl");
    {
        // Populate *without* a TTL (it would expire entries while we
        // stage them); only the restarted engine runs with the TTL on.
        let db = Database::builder(catalog()).data_dir(&dir).build();
        let mut session = db.session();
        // Publish clearly more than TTL entries so rehydration's clock
        // ticks alone would push the earliest past the cutoff.
        for (i, ship) in ["1996-06-01", "1996-03-01", "1996-01-01"]
            .iter()
            .enumerate()
        {
            session.execute(&q3(i as u32 + 1, ship)).unwrap();
        }
        for i in 0..8 {
            db.cache()
                .publish(warm_fp(i), warm_schema.clone(), warm_ht());
        }
        assert!(
            db.cache_stats().entries as u64 > TTL,
            "need more rehydrated entries than TTL ticks: {:?}",
            db.cache_stats()
        );
        db.flush().unwrap();
    }

    let db = Database::builder(Catalog::new())
        .data_dir(&dir)
        .gc(gc)
        .build();
    let recovered = db.cache_stats().entries;
    assert!(
        recovered as u64 > TTL,
        "cache rehydrated: {recovered} entries"
    );

    // First post-restart query: triggers enforcement (and with it the TTL
    // sweep election). The warm cache must survive and be reused.
    let mut session = db.session();
    let r = session.execute(&q3(50, "1996-01-01")).unwrap();
    assert!(
        r.decisions.iter().any(|(_, c)| c.is_some()),
        "warm table reused after restart with TTL configured: {:?}",
        r.decisions
    );
    assert_eq!(
        db.cache_stats().evictions,
        0,
        "first sweep after restart expired rehydrated entries"
    );
    assert!(db.cache_stats().entries >= recovered);

    // TTL still works after restart: leave the warm entries untouched
    // while fresh publishes age them past the TTL, then expect expiry.
    for i in 0..3 * TTL as u32 {
        session.execute(&ticker(100 + i, 1000 + i as i64)).unwrap();
    }
    assert!(
        db.cache_stats().evictions > 0,
        "idle entries never expired after restart: {:?}",
        db.cache_stats()
    );
    drop(db);
    fs::remove_dir_all(&dir).ok();
}

/// Regression: `Database::drop`'s best-effort final flush used to swallow
/// the error silently — a failed final snapshot left stale on-disk state
/// with no trace. The outcome is now recorded in the database's
/// [`hashstash::FlushErrorSlot`] (shareable, surviving the drop) as well
/// as logged; and a failing flush in `Drop` must not panic.
#[test]
fn drop_flush_failure_is_recorded_not_swallowed() {
    let dir = fresh_dir("dropflush");
    let db = Database::builder(catalog()).data_dir(&dir).build();
    let mut session = db.session();
    session.execute(&q3(1, "1996-06-01")).unwrap();

    // Sabotage the data dir *after* build: replace the directory with a
    // plain file, so every snapshot/WAL write fails with NotADirectory.
    // (chmod-based traps don't work under root, which ignores modes.)
    fs::remove_dir_all(&dir).unwrap();
    fs::write(&dir, b"not a directory").unwrap();

    // An explicit flush reports the failure both ways.
    let err = db.flush();
    assert!(err.is_err(), "flush into a file-at-dir-path succeeded?");
    assert!(db.take_flush_error().is_some(), "flush error not recorded");
    assert!(db.take_flush_error().is_none(), "take must drain the slot");

    // The drop path: clone the slot, drop the engine. The final flush
    // fails, must not panic, and must leave the error in the slot.
    let slot = db.flush_error_slot();
    drop(session);
    drop(db);
    let recorded = slot.take();
    assert!(
        recorded.is_some(),
        "drop-time flush failure was swallowed (empty slot)"
    );
    assert!(slot.take().is_none());
    fs::remove_file(&dir).ok();

    // And on a healthy directory a successful flush clears the slot.
    let dir = fresh_dir("dropflush-ok");
    let db = Database::builder(catalog()).data_dir(&dir).build();
    db.session().execute(&q3(2, "1996-06-01")).unwrap();
    db.flush().unwrap();
    assert!(
        db.take_flush_error().is_none(),
        "success must clear the slot"
    );
    drop(db);
    fs::remove_dir_all(&dir).ok();
}
