//! `Database::drop` must join every pool worker — no detached threads.
//! This is the only test in its binary so the OS thread count it samples
//! from `/proc/self/task` (Linux) is not perturbed by sibling tests.

use hashstash::Database;
use hashstash_storage::tpch::{generate, TpchConfig};

/// Threads in this process, per the kernel (`None` off Linux).
fn os_thread_count() -> Option<usize> {
    std::fs::read_dir("/proc/self/task").ok().map(|d| d.count())
}

#[test]
fn database_drop_joins_all_pool_workers() {
    let before = os_thread_count();

    let db = Database::builder(generate(TpchConfig::new(0.003, 11)))
        .parallelism(8)
        .build();
    assert_eq!(db.worker_pool().worker_count(), 7);
    if let (Some(before), Some(alive)) = (before, os_thread_count()) {
        assert!(
            alive >= before + 7,
            "7 pool workers are running ({before} -> {alive})"
        );
    }

    drop(db);
    // `WorkerPool::drop` *joins* the workers, so the count is back the
    // moment drop returns — no polling, no grace period.
    if let (Some(before), Some(after)) = (before, os_thread_count()) {
        assert_eq!(
            after, before,
            "dropping the database leaves no detached threads"
        );
    }
}
