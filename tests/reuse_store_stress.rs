//! Unified reuse-store tests: hash tables and temp tables sharing **one**
//! [`ReuseBudget`] — one byte limit, one eviction loop ranking both payload
//! kinds, exact byte accounting under concurrency, and the anti-starvation
//! floor that keeps either kind from squeezing the other out entirely.

use std::sync::{Arc, Barrier};
use std::thread;

use hashstash_cache::payload::row_bytes;
use hashstash_cache::{
    EvictionPolicy, GcConfig, HtManager, ReuseBudget, StoredHt, TaggedRow, DEFAULT_SHARDS,
};
use hashstash_exec::TempTableCache;
use hashstash_hashtable::ExtendibleHashTable;
use hashstash_plan::{HtFingerprint, HtKind, Interval, PredBox, Region};
use hashstash_types::{DataType, Field, Row, Schema, Value};

fn fp(table: &str, lo: i64, hi: i64) -> HtFingerprint {
    let t: Arc<str> = Arc::from(table);
    let key: Arc<str> = Arc::from(format!("{table}.k"));
    let attr: Arc<str> = Arc::from(format!("{table}.v"));
    HtFingerprint {
        kind: HtKind::JoinBuild,
        tables: std::iter::once(t).collect(),
        edges: vec![],
        region: Region::from_box(PredBox::all().with(
            attr.to_string(),
            Interval::closed(Value::Int(lo), Value::Int(hi)),
        )),
        key_attrs: vec![key.clone()],
        payload_attrs: vec![key],
        aggregates: vec![],
        tagged: false,
    }
}

fn ht(n: u64) -> StoredHt {
    let mut t = ExtendibleHashTable::new(16);
    for i in 0..n {
        t.insert(i, TaggedRow::untagged(Row::new(vec![Value::Int(i as i64)])));
    }
    StoredHt::Join(t)
}

fn rows(n: usize) -> Vec<Row> {
    (0..n)
        .map(|i| Row::new(vec![Value::Int(i as i64)]))
        .collect()
}

fn schema() -> Schema {
    Schema::new(vec![Field::new("t.k", DataType::Int)])
}

fn shared_pair(gc: GcConfig) -> (Arc<ReuseBudget>, HtManager, TempTableCache) {
    let budget = ReuseBudget::new(gc);
    let htm = HtManager::with_budget(Arc::clone(&budget), DEFAULT_SHARDS);
    let temps = TempTableCache::with_budget(Arc::clone(&budget), DEFAULT_SHARDS);
    (budget, htm, temps)
}

/// 8 threads publishing, reusing and evicting **both** payload kinds under
/// one tight shared budget: at quiesce every per-store atomic statistic
/// must agree exactly with a recount of its shards, the combined footprint
/// must equal the budget's counter and hold the limit, and both kinds must
/// have been evicted by the single victim loop.
#[test]
fn mixed_payload_stress_audit_clean_under_shared_budget() {
    const THREADS: usize = 8;
    const OPS: usize = 60;

    let ht_bytes = ht(64).logical_bytes();
    let row_bytes_100 = rows(100).iter().map(row_bytes).sum::<usize>();
    // Budget fits a handful of either kind — every thread's publishes race
    // the others' evictions, in both stores.
    let budget_bytes = ht_bytes * 3 + row_bytes_100 * 3;
    let (budget, htm, temps) = shared_pair(GcConfig {
        budget_bytes: Some(budget_bytes),
        policy: EvictionPolicy::Lru,
        ..GcConfig::default()
    });
    let htm = Arc::new(htm);
    let temps = Arc::new(temps);
    let barrier = Arc::new(Barrier::new(THREADS));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let htm = Arc::clone(&htm);
            let temps = Arc::clone(&temps);
            let barrier = Arc::clone(&barrier);
            // Raw spawns model independent client sessions (see clippy.toml).
            #[allow(clippy::disallowed_methods)]
            thread::spawn(move || {
                barrier.wait();
                for i in 0..OPS {
                    let shape = (t + i) % 4;
                    let lo = ((t * 7 + i * 3) % 40) as i64;
                    if i % 2 == 0 {
                        // Hash-table side: publish + mixed reuse.
                        let table = format!("h{shape}");
                        htm.publish(fp(&table, lo, lo + 10), schema(), ht(64));
                        let cands = htm.candidates(&fp(&table, 0, 60));
                        if let Some(c) = cands.first() {
                            if i % 6 == 0 {
                                if let Ok(mut co) = htm.checkout_mut(c.id) {
                                    if let Ok(StoredHt::Join(tab)) = co.table_mut() {
                                        let base = 1000 + i as u64;
                                        tab.insert(
                                            base,
                                            TaggedRow::untagged(Row::new(vec![Value::Int(
                                                base as i64,
                                            )])),
                                        );
                                    }
                                    co.fingerprint.region = co
                                        .fingerprint
                                        .region
                                        .union(&fp(&table, lo, lo + 10).region);
                                    co.checkin().expect("pinned entry checks in");
                                }
                            } else if let Ok(co) = htm.checkout(c.id) {
                                assert!(!co.table().is_empty());
                            }
                        }
                    } else {
                        // Temp-table side: publish + snapshot reads.
                        let table = format!("m{shape}");
                        let id = temps.publish(fp(&table, lo, lo + 10), schema(), rows(100));
                        // The entry may already be evicted by a concurrent
                        // publish — a read error is the documented protocol.
                        if let Ok((_, snap)) = temps.read(id) {
                            assert_eq!(snap.len(), 100);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no thread panicked");
    }

    // Quiesce: with the `analysis` feature on, every checkout guard must
    // have been returned (pin-leak detector) before any other invariant is
    // checked — a leaked guard would pin entries and skew eviction.
    #[cfg(feature = "analysis")]
    {
        htm.assert_quiesced();
        temps.assert_quiesced();
    }

    // Quiesce: per-store stats agree exactly with shard recounts.
    let hs = htm.stats();
    let (h_bytes, h_entries) = htm.audit();
    assert_eq!(hs.bytes, h_bytes, "ht byte accounting drifted");
    assert_eq!(hs.entries, h_entries, "ht entry count drifted");
    let ts = temps.stats();
    let (t_bytes, t_entries) = temps.audit();
    assert_eq!(ts.bytes, t_bytes, "temp byte accounting drifted");
    assert_eq!(ts.entries, t_entries, "temp entry count drifted");

    // The shared budget's combined counter is the sum of both stores…
    assert_eq!(
        budget.bytes(),
        hs.bytes + ts.bytes,
        "combined footprint drifted from the per-store counters"
    );
    // …and the limit holds at quiesce.
    htm.enforce_budget();
    assert!(
        budget.bytes() <= budget_bytes,
        "shared budget exceeded at quiesce ({} > {budget_bytes})",
        budget.bytes()
    );
    // One victim loop ranked both payload kinds: each store saw evictions.
    assert!(hs.evictions > 0, "hash tables were never evicted");
    assert!(ts.evictions > 0, "temp tables were never evicted");
    // Publish accounting holds per store (every call created or deduped).
    assert_eq!(hs.publishes + hs.publish_dedups, (THREADS * OPS / 2) as u64);
    assert_eq!(ts.publishes + ts.publish_dedups, (THREADS * OPS / 2) as u64);
}

/// The single victim search is genuinely cross-kind: under LRU, the oldest
/// entry is evicted regardless of which store holds it.
#[test]
fn unified_eviction_ranks_both_payload_kinds_by_recency() {
    let ht_bytes = ht(64).logical_bytes();
    let temp_bytes = rows(100).iter().map(row_bytes).sum::<usize>();
    // Room for one of each, not a third entry.
    let (_, htm, temps) = shared_pair(GcConfig {
        budget_bytes: Some(ht_bytes + temp_bytes + ht_bytes / 2),
        policy: EvictionPolicy::Lru,
        ..GcConfig::default()
    });
    let old_ht = htm.publish(fp("h", 0, 10), schema(), ht(64));
    let newer_temp = temps.publish(fp("m", 0, 10), schema(), rows(100));
    // Freshen the temp table so the hash table is globally LRU.
    temps.read(newer_temp).unwrap();
    // A new hash-table publish overflows the shared budget: the victim must
    // be the *older hash table*, not the fresher temp table — even though
    // the temp table lives in the other store.
    let new_ht = htm.publish(fp("h", 20, 30), schema(), ht(64));
    assert!(!htm.is_available(old_ht), "oldest entry (ht) evicted");
    assert!(htm.is_available(new_ht));
    assert!(
        temps.read(newer_temp).is_ok(),
        "fresher temp table survived"
    );

    // Mirror image: a fresh temp publish must evict the now-LRU hash table
    // rather than the recently-read temp table.
    let (_, htm2, temps2) = shared_pair(GcConfig {
        budget_bytes: Some(ht_bytes + temp_bytes + temp_bytes / 2),
        policy: EvictionPolicy::Lru,
        ..GcConfig::default()
    });
    let lru_ht = htm2.publish(fp("h", 0, 10), schema(), ht(64));
    let warm_temp = temps2.publish(fp("m", 0, 10), schema(), rows(100));
    temps2.read(warm_temp).unwrap();
    let _new_temp = temps2.publish(fp("m", 20, 30), schema(), rows(100));
    assert!(
        !htm2.is_available(lru_ht),
        "temp-side publish evicted the LRU hash table across stores"
    );
    assert!(temps2.read(warm_temp).is_ok());
}

/// Anti-starvation floor: a payload kind sitting at or below
/// `floor_bytes` is skipped by the victim search while the other kind has
/// evictable mass — flooding hash tables cannot flush the last temp
/// tables, and vice versa.
#[test]
fn floor_prevents_either_kind_from_starving_the_other() {
    let temp_bytes_each = rows(50).iter().map(row_bytes).sum::<usize>();
    let ht_bytes_each = ht(64).logical_bytes();

    // Keep two temp tables under the floor, then flood hash tables way past
    // the budget: every eviction must hit the hash-table store.
    let floor = temp_bytes_each * 2 + 1;
    let (_, htm, temps) = shared_pair(GcConfig {
        budget_bytes: Some(floor + ht_bytes_each * 2),
        policy: EvictionPolicy::Lru,
        floor_bytes: floor,
        ..GcConfig::default()
    });
    let t1 = temps.publish(fp("m", 0, 10), schema(), rows(50));
    let t2 = temps.publish(fp("m", 20, 30), schema(), rows(50));
    for i in 0..20 {
        let lo = i as i64 * 40;
        htm.publish(fp("h", lo, lo + 10), schema(), ht(64));
    }
    assert!(
        temps.read(t1).is_ok(),
        "temp table below the floor survives"
    );
    assert!(
        temps.read(t2).is_ok(),
        "temp table below the floor survives"
    );
    assert!(htm.stats().evictions > 0, "pressure fell on the ht store");
    assert_eq!(temps.stats().evictions, 0, "floor shielded the temp store");

    // Mirror image: hash tables below the floor survive a temp flood.
    let floor2 = ht_bytes_each * 2 + 1;
    let (_, htm2, temps2) = shared_pair(GcConfig {
        budget_bytes: Some(floor2 + temp_bytes_each * 2),
        policy: EvictionPolicy::Lru,
        floor_bytes: floor2,
        ..GcConfig::default()
    });
    let h1 = htm2.publish(fp("h", 0, 10), schema(), ht(64));
    let h2 = htm2.publish(fp("h", 20, 30), schema(), ht(64));
    for i in 0..20 {
        let lo = i as i64 * 40;
        temps2.publish(fp("m", lo, lo + 10), schema(), rows(50));
    }
    assert!(htm2.is_available(h1), "hash table below the floor survives");
    assert!(htm2.is_available(h2), "hash table below the floor survives");
    assert_eq!(htm2.stats().evictions, 0, "floor shielded the ht store");
    assert!(temps2.stats().evictions > 0);
}

/// The pin-leak detector actually detects: a `mem::forget`-leaked checkout
/// guard (never released, never dropped) must fail the quiesce assertion
/// instead of silently pinning its entry against eviction forever.
#[cfg(feature = "analysis")]
#[test]
#[should_panic(expected = "pin leak")]
fn forgotten_checkout_guard_fails_quiesce() {
    let (_, htm, _temps) = shared_pair(GcConfig::default());
    let id = htm.publish(fp("h", 0, 10), schema(), ht(8));
    let guard = htm.checkout(id).expect("fresh publish is available");
    std::mem::forget(guard);
    htm.assert_quiesced();
}

/// With a floor configured but only one store holding anything, the
/// fallback pass still makes progress: the budget is enforced even though
/// the only populated store is nominally "protected".
#[test]
fn floor_fallback_still_enforces_the_budget() {
    let ht_bytes_each = ht(64).logical_bytes();
    let (budget, htm, _temps) = shared_pair(GcConfig {
        budget_bytes: Some(ht_bytes_each * 2 + ht_bytes_each / 2),
        policy: EvictionPolicy::Lru,
        // Floor far above anything the store will ever hold.
        floor_bytes: usize::MAX / 2,
        ..GcConfig::default()
    });
    for i in 0..6 {
        let lo = i as i64 * 40;
        htm.publish(fp("h", lo, lo + 10), schema(), ht(64));
    }
    assert!(
        budget.bytes() <= ht_bytes_each * 2 + ht_bytes_each / 2,
        "budget enforced despite the universal floor"
    );
    assert!(htm.stats().evictions > 0);
}
