//! Budget-floor semantics under the shared [`ReuseBudget`]: the per-kind
//! anti-starvation floor's fallback pass, and the per-tenant floors the
//! serving front end builds on.
//!
//! The fallback test pins an old bug: when *every* source was at its
//! floor, the fallback victim search ranked all entries together and so
//! kept taking whichever store the policy ranked first — under LRU that
//! drained the older store to zero while the other sat untouched at its
//! floor. The fallback now walks sources round-robin, so sustained
//! pressure alternates kinds.

use std::sync::Arc;

use hashstash_cache::{
    EvictionPolicy, GcConfig, HtManager, ReuseBudget, StoredHt, TaggedRow, TenantId, DEFAULT_SHARDS,
};
use hashstash_exec::TempTableCache;
use hashstash_hashtable::ExtendibleHashTable;
use hashstash_plan::{HtFingerprint, HtKind, Interval, PredBox, Region};
use hashstash_types::{DataType, Field, Row, Schema, Value};

fn fp(table: &str, lo: i64, hi: i64) -> HtFingerprint {
    let t: Arc<str> = Arc::from(table);
    let key: Arc<str> = Arc::from(format!("{table}.k"));
    let attr: Arc<str> = Arc::from(format!("{table}.v"));
    HtFingerprint {
        kind: HtKind::JoinBuild,
        tables: std::iter::once(t).collect(),
        edges: vec![],
        region: Region::from_box(PredBox::all().with(
            attr.to_string(),
            Interval::closed(Value::Int(lo), Value::Int(hi)),
        )),
        key_attrs: vec![key.clone()],
        payload_attrs: vec![key],
        aggregates: vec![],
        tagged: false,
    }
}

fn ht(n: u64) -> StoredHt {
    let mut t = ExtendibleHashTable::new(16);
    for i in 0..n {
        t.insert(i, TaggedRow::untagged(Row::new(vec![Value::Int(i as i64)])));
    }
    StoredHt::Join(t)
}

fn rows(n: usize) -> Vec<Row> {
    (0..n)
        .map(|i| Row::new(vec![Value::Int(i as i64)]))
        .collect()
}

fn schema() -> Schema {
    Schema::new(vec![Field::new("t.k", DataType::Int)])
}

fn shared_pair(gc: GcConfig) -> (Arc<ReuseBudget>, HtManager, TempTableCache) {
    let budget = ReuseBudget::new(gc);
    let htm = HtManager::with_budget(Arc::clone(&budget), DEFAULT_SHARDS);
    let temps = TempTableCache::with_budget(Arc::clone(&budget), DEFAULT_SHARDS);
    (budget, htm, temps)
}

/// Regression: both stores at their per-kind floor, budget still exceeded.
/// The fallback pass must round-robin across the sources instead of
/// draining the LRU-oldest store (the hash tables, published first) while
/// the temp store never loses an entry.
#[test]
fn fallback_at_floor_alternates_between_stores() {
    const EACH: usize = 10;
    // Unbounded while we stage the working set, so publishes don't evict.
    let (budget, htm, temps) = shared_pair(GcConfig {
        budget_bytes: None,
        policy: EvictionPolicy::Lru,
        ..GcConfig::default()
    });
    for i in 0..EACH {
        htm.publish(fp("h", i as i64, i as i64 + 1), schema(), ht(64));
    }
    for i in 0..EACH {
        temps.publish(fp("t", i as i64, i as i64 + 1), schema(), rows(100));
    }
    let total = budget.bytes();
    assert_eq!(htm.len() + temps.len(), 2 * EACH);

    // Now tighten: keep roughly half, with a floor so high both kinds are
    // "protected" — pass 1 finds nothing, every eviction is a fallback.
    budget.set_gc_config(GcConfig {
        budget_bytes: Some(total / 2),
        policy: EvictionPolicy::Lru,
        floor_bytes: usize::MAX / 4,
        ..GcConfig::default()
    });
    let evicted = budget.enforce();
    assert!(evicted > 0, "over-budget enforce evicted nothing");
    assert!(budget.bytes() <= total / 2, "budget not enforced");

    let ht_ev = htm.stats().evictions;
    let tt_ev = temps.stats().evictions;
    // The buggy fallback ranked everything together: LRU would take all
    // hash tables (older) before the first temp table. Round-robin takes
    // them alternately, so both stores lose entries and neither is wiped
    // while the other is full.
    assert!(ht_ev > 0, "no hash tables evicted by fallback");
    assert!(
        tt_ev > 0,
        "no temp tables evicted by fallback (old first-store drain bug)"
    );
    assert!(
        ht_ev.abs_diff(tt_ev) <= 1,
        "fallback did not alternate: {ht_ev} ht vs {tt_ev} temp evictions"
    );
    assert!(
        !htm.is_empty(),
        "hash-table store fully drained at its floor"
    );
    assert!(!temps.is_empty(), "temp store fully drained at its floor");
}

/// A tenant whose footprint is at its floor is skipped by the victim
/// search while another tenant still has evictable mass: the churning
/// tenant pays for its own pressure.
#[test]
fn tenant_floor_protects_the_quiet_tenant() {
    const QUIET: TenantId = TenantId(1);
    const NOISY: TenantId = TenantId(2);

    let (budget, htm, _temps) = shared_pair(GcConfig {
        budget_bytes: None,
        policy: EvictionPolicy::Lru,
        ..GcConfig::default()
    });
    // The quiet tenant stages a small working set first (oldest under LRU,
    // so *without* the floor it would be the first to go).
    for i in 0..3 {
        htm.publish_as(QUIET, fp("q", i, i + 1), schema(), ht(64));
    }
    let quiet_bytes = budget.tenant_bytes().get(&QUIET).copied().unwrap_or(0);
    assert!(quiet_bytes > 0);
    budget.set_tenant_floor(QUIET, quiet_bytes);
    assert_eq!(budget.tenant_floor(QUIET), quiet_bytes);

    for i in 0..12 {
        htm.publish_as(NOISY, fp("n", i, i + 1), schema(), ht(64));
    }
    let total = budget.bytes();
    // Budget forces roughly half the noisy set out, but leaves more than
    // enough room for the quiet tenant's protected footprint.
    budget.set_gc_config(GcConfig {
        budget_bytes: Some(total - quiet_bytes),
        policy: EvictionPolicy::Lru,
        ..GcConfig::default()
    });
    let evicted = budget.enforce();
    assert!(evicted > 0);

    let quiet_after = budget.tenant_bytes().get(&QUIET).copied().unwrap_or(0);
    assert_eq!(
        quiet_after, quiet_bytes,
        "quiet tenant lost bytes despite its floor"
    );
    assert_eq!(
        htm.tenant_stats_for(QUIET).evictions,
        0,
        "quiet tenant's entries were evicted under LRU despite the floor"
    );
    assert!(
        htm.tenant_stats_for(NOISY).evictions >= evicted as u64,
        "evictions were not charged to the churning tenant"
    );

    // Clearing the floor re-exposes the quiet tenant to the victim search.
    budget.set_tenant_floor(QUIET, 0);
    assert_eq!(budget.tenant_floor(QUIET), 0);
    budget.set_gc_config(GcConfig {
        budget_bytes: Some(quiet_bytes.saturating_sub(1)),
        policy: EvictionPolicy::Lru,
        ..GcConfig::default()
    });
    budget.enforce();
    assert!(
        htm.tenant_stats_for(QUIET).evictions > 0,
        "cleared floor still protects the tenant"
    );
}

/// When every tenant is at its floor, the tenant-ignoring fallback still
/// makes progress — floors are starvation protection, not a way to wedge
/// the budget above its limit forever.
#[test]
fn all_tenants_at_floor_still_converges() {
    const A: TenantId = TenantId(1);
    const B: TenantId = TenantId(2);
    let (budget, htm, _temps) = shared_pair(GcConfig {
        budget_bytes: None,
        ..GcConfig::default()
    });
    for i in 0..6 {
        let t = if i % 2 == 0 { A } else { B };
        htm.publish_as(t, fp("x", i, i + 1), schema(), ht(32));
    }
    // Floors cover everything both tenants hold.
    budget.set_tenant_floor(A, usize::MAX / 4);
    budget.set_tenant_floor(B, usize::MAX / 4);
    let total = budget.bytes();
    budget.set_gc_config(GcConfig {
        budget_bytes: Some(total / 3),
        ..GcConfig::default()
    });
    let evicted = budget.enforce();
    assert!(
        evicted > 0,
        "fallback never fired with every tenant at floor"
    );
    assert!(
        budget.bytes() <= total / 3,
        "budget stuck above the limit: floors must not block enforcement"
    );
}

/// Per-tenant statistics are an exact partition of the store totals for
/// the additive counters, and publishes under `publish_as` are credited
/// to their tenant.
#[test]
fn tenant_stats_partition_the_store_totals() {
    const A: TenantId = TenantId(1);
    const B: TenantId = TenantId(2);
    let (_budget, htm, _temps) = shared_pair(GcConfig::default());

    for i in 0..4 {
        htm.publish_as(A, fp("a", i, i + 1), schema(), ht(16));
    }
    for i in 0..2 {
        htm.publish_as(B, fp("b", i, i + 1), schema(), ht(16));
    }
    // A duplicate publish dedups onto the existing entry (same lineage).
    htm.publish_as(B, fp("a", 0, 1), schema(), ht(16));

    let global = htm.stats();
    let per: Vec<_> = htm.tenant_stats();
    let sum =
        |f: fn(&hashstash_cache::CacheStats) -> u64| -> u64 { per.iter().map(|(_, s)| f(s)).sum() };
    assert_eq!(sum(|s| s.publishes), global.publishes);
    assert_eq!(sum(|s| s.publish_dedups), global.publish_dedups);
    assert_eq!(sum(|s| s.evictions), global.evictions);
    assert_eq!(
        per.iter().map(|(_, s)| s.bytes).sum::<usize>(),
        global.bytes
    );
    assert_eq!(
        per.iter().map(|(_, s)| s.entries).sum::<usize>(),
        global.entries
    );

    let a = htm.tenant_stats_for(A);
    let b = htm.tenant_stats_for(B);
    assert_eq!(a.publishes, 4);
    assert_eq!(b.publishes, 2);
    // The dedup was B's call, so it is credited to B; the entry stays A's.
    assert_eq!(b.publish_dedups, 1);
    assert_eq!(a.entries, 4);
    assert_eq!(b.entries, 2);
}
