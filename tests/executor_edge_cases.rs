//! Edge-case and failure-injection tests for the executor and engine:
//! empty inputs, degenerate predicates, eviction races and cache poisoning.

use hashstash::{decision_string, Database, EngineStrategy};
use hashstash_plan::{AggExpr, AggFunc, Interval, QueryBuilder, QuerySpec};
use hashstash_storage::tpch::{generate, TpchConfig};
use hashstash_storage::{Catalog, TableBuilder};
use hashstash_types::{DataType, Value};

fn catalog() -> Catalog {
    generate(TpchConfig::new(0.003, 2024))
}

fn q_age(id: u32, lo: i64, hi: i64) -> QuerySpec {
    QueryBuilder::new(id)
        .join(
            "customer",
            "customer.c_custkey",
            "orders",
            "orders.o_custkey",
        )
        .filter(
            "customer.c_age",
            Interval::closed(Value::Int(lo), Value::Int(hi)),
        )
        .group_by("customer.c_age")
        .agg(AggExpr::new(AggFunc::Count, "orders.o_orderkey"))
        .build()
        .unwrap()
}

#[test]
fn empty_predicate_range_yields_empty_result() {
    let mut engine = Database::open(catalog()).session();
    // c_age in [200, 300] matches nothing (domain is 18..92).
    let r = engine.execute(&q_age(1, 200, 300)).unwrap();
    assert!(r.rows.is_empty());
    // A follow-up non-empty query still works (the cached empty tables must
    // not poison matching).
    let r2 = engine.execute(&q_age(2, 20, 80)).unwrap();
    assert!(!r2.rows.is_empty());
}

#[test]
fn inverted_range_is_empty_not_an_error() {
    let mut engine = Database::open(catalog()).session();
    let r = engine.execute(&q_age(1, 80, 20)).unwrap();
    assert!(r.rows.is_empty());
}

#[test]
fn single_table_aggregate_without_joins() {
    let mut engine = Database::open(catalog()).session();
    let q = QueryBuilder::new(1)
        .table("customer")
        .group_by("customer.c_mktsegment")
        .agg(AggExpr::new(AggFunc::Count, "customer.c_custkey"))
        .build()
        .unwrap();
    let r = engine.execute(&q).unwrap();
    assert_eq!(r.rows.len(), 5, "five market segments");
    let total: i64 = r.rows.iter().map(|row| row.get(1).as_int().unwrap()).sum();
    assert_eq!(
        total as usize,
        engine
            .database()
            .catalog()
            .get("customer")
            .unwrap()
            .row_count()
    );
    // Run again: exact reuse of the aggregate table.
    let r2 = engine.execute(&q).unwrap();
    assert!(r2.decisions.iter().any(|(_, c)| c.is_some()));
    assert_eq!(r.rows.len(), r2.rows.len());
}

#[test]
fn aggregate_without_group_by_returns_one_row() {
    let mut engine = Database::open(catalog()).session();
    let q = QueryBuilder::new(1)
        .table("orders")
        .filter(
            "orders.o_orderdate",
            Interval::at_least(Value::date_ymd(1995, 1, 1)),
        )
        .agg(AggExpr::new(AggFunc::Sum, "orders.o_totalprice"))
        .agg(AggExpr::new(AggFunc::Avg, "orders.o_totalprice"))
        .build()
        .unwrap();
    let r = engine.execute(&q).unwrap();
    assert_eq!(r.rows.len(), 1);
    let sum = r.rows[0].get(0).as_float().unwrap();
    let avg = r.rows[0].get(1).as_float().unwrap();
    assert!(sum > 0.0 && avg > 0.0 && avg < sum);
}

#[test]
fn empty_base_table_join() {
    let mut cat = catalog();
    // Register an empty table and join against it.
    let empty = TableBuilder::new(
        "promo",
        vec![("pr_custkey", DataType::Int), ("pr_pct", DataType::Float)],
    )
    .finish();
    cat.register(empty);
    let mut engine = Database::open(cat).session();
    let q = QueryBuilder::new(1)
        .join(
            "promo",
            "promo.pr_custkey",
            "customer",
            "customer.c_custkey",
        )
        .group_by("customer.c_age")
        .agg(AggExpr::new(AggFunc::Count, "promo.pr_pct"))
        .build()
        .unwrap();
    let r = engine.execute(&q).unwrap();
    assert!(r.rows.is_empty(), "join against empty table yields nothing");
}

#[test]
fn min_max_aggregates_on_dates() {
    let mut engine = Database::open(catalog()).session();
    let q = QueryBuilder::new(1)
        .table("orders")
        .group_by("orders.o_custkey")
        .agg(AggExpr::new(AggFunc::Min, "orders.o_orderdate"))
        .agg(AggExpr::new(AggFunc::Max, "orders.o_orderdate"))
        .build()
        .unwrap();
    let r = engine.execute(&q).unwrap();
    assert!(!r.rows.is_empty());
    for row in &r.rows {
        let min = row.get(1).as_date().unwrap();
        let max = row.get(2).as_date().unwrap();
        assert!(min <= max);
    }
}

#[test]
fn alternating_queries_stress_cache_transitions() {
    // Alternate between two shapes so the cache flips between candidates;
    // verify against no-reuse at every step.
    let mut hs = Database::open(catalog()).session();
    let mut ns = Database::builder(catalog())
        .strategy(EngineStrategy::NoReuse)
        .build()
        .session();
    for i in 0..10u32 {
        let q = if i % 2 == 0 {
            q_age(i, 20 + i as i64, 60 + i as i64)
        } else {
            QueryBuilder::new(i)
                .join("part", "part.p_partkey", "lineitem", "lineitem.l_partkey")
                .filter(
                    "part.p_size",
                    Interval::closed(Value::Int(1), Value::Int(10 + i as i64)),
                )
                .group_by("part.p_mfgr")
                .agg(AggExpr::new(AggFunc::Sum, "lineitem.l_quantity"))
                .build()
                .unwrap()
        };
        let mut got = hs.execute(&q).unwrap().rows;
        let mut want = ns.execute(&q).unwrap().rows;
        got.sort();
        want.sort();
        assert_eq!(got.len(), want.len(), "query {i}");
        for (a, b) in got.iter().zip(&want) {
            assert_eq!(a.get(0), b.get(0), "query {i} group keys");
        }
    }
}

#[test]
fn unknown_table_is_a_clean_error() {
    let mut engine = Database::open(catalog()).session();
    let q = QueryBuilder::new(1)
        .table("no_such_table")
        .agg(AggExpr::new(AggFunc::Count, "no_such_table.x"))
        .build()
        .unwrap();
    let err = engine.execute(&q).unwrap_err();
    assert!(err.to_string().contains("no_such_table"), "{err}");
}

#[test]
fn decision_string_marks_eliminated_operators() {
    let mut engine = Database::open(catalog()).session();
    let q = q_age(1, 20, 80);
    engine.execute(&q).unwrap();
    // Identical query: aggregate exact-reuse eliminates the join entirely.
    let r = engine.execute(&q_age(2, 20, 80)).unwrap();
    let s = decision_string(&r, &["customer.", "agg"]);
    assert_eq!(s.len(), 2);
    assert!(
        s == "XS" || s == "SS",
        "expected join eliminated or reused, got {s}"
    );
}
