//! Stress: 8 threads racing **parallel builds** and publishes against a
//! tight shared `ReuseBudget`, so evictions land mid-build, publishes race
//! identical-lineage dedup, and reuse checkouts race eviction. Invariants at
//! quiesce: `stats == audit()` (no leaked bytes or entries), the budget
//! holds, every surviving entry is checkable-out (no stranded writer pins),
//! and — because parallel-built tables are bit-identical to serial ones —
//! every answer equals the serial no-reuse reference *including row order*.
//!
//! Error paths are exercised deliberately: a mutating-reuse plan whose delta
//! scan fails *after* the exclusive checkout is held, and a fresh-build plan
//! whose probe fails *after* the (parallel) build completed — neither may
//! leak a partial table or strand the cached entry.

use std::sync::Arc;

use hashstash_cache::{GcConfig, HtManager};
use hashstash_exec::plan::{PhysicalPlan, ReuseSpec, ScanSpec};
use hashstash_exec::{execute, ExecContext, TempTableCache, MIN_PARALLEL_BUILD_ROWS};
use hashstash_plan::{HtFingerprint, HtKind, Interval, PredBox, Region, ReuseCase};
use hashstash_storage::{Catalog, TableBuilder};
use hashstash_types::{DataType, HsError, Row, Value};

const DIM_ROWS: i64 = 6_000;
const VARIANTS: usize = 8;
const THREADS: usize = 8;
const ROUNDS: usize = 6;
const WORKERS: usize = 8;

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    let mut d = TableBuilder::new(
        "dim",
        vec![("d_key", DataType::Int), ("d_attr", DataType::Int)],
    );
    for i in 0..DIM_ROWS {
        d.push_row(vec![Value::Int(i), Value::Int(i % 311)]);
    }
    cat.register(d.finish());
    let mut f = TableBuilder::new("fact", vec![("f_key", DataType::Int)]);
    for i in 0..DIM_ROWS {
        f.push_row(vec![Value::Int((i * 13) % DIM_ROWS)]);
    }
    cat.register(f.finish());
    cat
}

/// Per-variant build region: all cross the partitioned-build threshold.
fn hi_of(variant: usize) -> i64 {
    let hi = 4_500 + 150 * variant as i64;
    assert!(hi as usize >= MIN_PARALLEL_BUILD_ROWS);
    hi
}

fn fp_of(variant: usize) -> HtFingerprint {
    HtFingerprint {
        kind: HtKind::JoinBuild,
        tables: std::iter::once(Arc::from("dim")).collect(),
        edges: vec![],
        region: Region::from_box(PredBox::all().with(
            "dim.d_key",
            Interval::closed(Value::Int(0), Value::Int(hi_of(variant))),
        )),
        key_attrs: vec![Arc::from("dim.d_key")],
        payload_attrs: vec![Arc::from("dim.d_key"), Arc::from("dim.d_attr")],
        aggregates: vec![],
        tagged: false,
    }
}

fn build_scan(variant: usize, table: &str) -> PhysicalPlan {
    PhysicalPlan::Scan(
        ScanSpec::filtered(
            table,
            PredBox::all().with(
                "dim.d_key",
                Interval::closed(Value::Int(0), Value::Int(hi_of(variant))),
            ),
        )
        .project(&["dim.d_key", "dim.d_attr"]),
    )
}

fn join(
    probe_table: &str,
    build: Option<PhysicalPlan>,
    reuse: Option<ReuseSpec>,
    publish: Option<HtFingerprint>,
) -> PhysicalPlan {
    PhysicalPlan::HashJoin {
        probe: Box::new(PhysicalPlan::Scan(ScanSpec::full(probe_table))),
        build: build.map(Box::new),
        probe_key: "fact.f_key".into(),
        build_key: "dim.d_key".into(),
        reuse,
        publish,
    }
}

fn fresh_plan(variant: usize) -> PhysicalPlan {
    join(
        "fact",
        Some(build_scan(variant, "dim")),
        None,
        Some(fp_of(variant)),
    )
}

#[test]
fn racing_parallel_builds_and_publishes_audit_clean() {
    let cat = catalog();

    // Serial no-reuse references, one per variant. Parallel builds are
    // bit-identical to serial ones, and an exact reuse probes the very
    // chains the fresh build created — so even the row ORDER must match.
    let reference: Vec<Vec<Row>> = (0..VARIANTS)
        .map(|v| {
            let htm = HtManager::unbounded();
            let temps = TempTableCache::unbounded();
            let mut ctx = ExecContext::new(&cat, &htm, &temps).with_parallelism(1);
            let plan = join("fact", Some(build_scan(v, "dim")), None, None);
            execute(&plan, &mut ctx).expect("reference").1
        })
        .collect();
    let reference = Arc::new(reference);

    // Tight budget: roughly two tables' worth, so publishes constantly
    // evict while other threads are mid-build or mid-reuse.
    let budget = 340 * 1024;
    let htm = HtManager::new(GcConfig {
        budget_bytes: Some(budget),
        ..GcConfig::default()
    });
    let temps = TempTableCache::unbounded();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cat = &cat;
            let htm = &htm;
            let temps = &temps;
            let reference = Arc::clone(&reference);
            s.spawn(move || {
                for round in 0..ROUNDS {
                    let v = (t + round) % VARIANTS;
                    let fp = fp_of(v);

                    // 1. Try exact reuse of a cached candidate; fall back to
                    //    a fresh parallel build + publish. A candidate can
                    //    be evicted between lookup and checkout — that
                    //    CacheError is the re-plan path, never a failure.
                    let cands = htm.candidates(&fp);
                    let exact = cands
                        .iter()
                        .find(|c| c.fingerprint.region.set_eq(&fp.region));
                    let plan = match exact {
                        Some(c) => join(
                            "fact",
                            None,
                            Some(ReuseSpec {
                                id: c.id,
                                case: ReuseCase::Exact,
                                post_filter: None,
                                request_region: fp.region.clone(),
                                cached_region: c.fingerprint.region.clone(),
                                schema: c.schema.clone(),
                            }),
                            None,
                        ),
                        None => fresh_plan(v),
                    };
                    let mut ctx = ExecContext::new(cat, htm, temps).with_parallelism(WORKERS);
                    let rows = match execute(&plan, &mut ctx) {
                        Ok((_, rows)) => rows,
                        Err(HsError::CacheError(_)) => {
                            // Candidate vanished or got writer-locked:
                            // re-plan as a fresh build.
                            let mut ctx =
                                ExecContext::new(cat, htm, temps).with_parallelism(WORKERS);
                            execute(&fresh_plan(v), &mut ctx)
                                .expect("replan executes")
                                .1
                        }
                        Err(e) => panic!("thread {t} round {round}: {e}"),
                    };
                    assert_eq!(
                        rows, reference[v],
                        "thread {t} round {round} variant {v}: rows and order"
                    );

                    // 2. Error path A: mutating reuse whose delta scan fails
                    //    *after* the exclusive checkout is held. The guard
                    //    must release the entry, not strand it.
                    if let Some(c) = htm.candidates(&fp).first() {
                        let bad = join(
                            "fact",
                            Some(PhysicalPlan::Scan(ScanSpec::full("no_such_table"))),
                            Some(ReuseSpec {
                                id: c.id,
                                case: ReuseCase::Partial,
                                post_filter: None,
                                request_region: Region::all(),
                                cached_region: c.fingerprint.region.clone(),
                                schema: c.schema.clone(),
                            }),
                            None,
                        );
                        let mut ctx = ExecContext::new(cat, htm, temps).with_parallelism(WORKERS);
                        // Catalog error once the checkout is held; cache
                        // error if the entry was evicted/locked first —
                        // either way it must fail and release the guard.
                        assert!(
                            execute(&bad, &mut ctx).is_err(),
                            "delta scan of a missing table must fail"
                        );
                    }

                    // 3. Error path B: fresh parallel build completes, then
                    //    the probe fails — the built table must be dropped,
                    //    never published or charged to the budget.
                    let bad_probe = join(
                        "no_such_table",
                        Some(build_scan(v, "dim")),
                        None,
                        Some(fp.clone()),
                    );
                    let mut ctx = ExecContext::new(cat, htm, temps).with_parallelism(WORKERS);
                    assert!(
                        execute(&bad_probe, &mut ctx).is_err(),
                        "probe of a missing table must fail"
                    );
                }
            });
        }
    });

    // Quiesce invariants: accounting audits clean, budget holds, and no
    // entry is stranded half-built or writer-pinned.
    let stats = htm.stats();
    let (audit_bytes, audit_entries) = htm.audit();
    assert_eq!(stats.bytes, audit_bytes, "byte accounting audits clean");
    assert_eq!(
        stats.entries, audit_entries,
        "entry accounting audits clean"
    );
    assert!(
        stats.bytes <= budget,
        "budget holds at quiesce: {} <= {budget}",
        stats.bytes
    );
    assert!(stats.evictions > 0, "the tight budget actually evicted");
    for v in 0..VARIANTS {
        for c in htm.candidates(&fp_of(v)) {
            let co = htm
                .checkout(c.id)
                .expect("surviving entries are checkable-out (no stranded pins)");
            assert!(!co.table().is_empty(), "no half-built table survived");
            drop(co);
        }
    }
}
