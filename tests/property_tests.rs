//! Property-based tests over the core invariants:
//!
//! * region algebra laws (difference, containment, union, coalescing),
//! * the reuse-case classifier versus a brute-force point check,
//! * the extendible hash table versus a `HashMap` model,
//! * optimizer answers versus never-share answers on random queries.

use proptest::prelude::*;
use std::collections::HashMap;

use hashstash_hashtable::ExtendibleHashTable;
use hashstash_plan::{Interval, PredBox, Region, ReuseCase};
use hashstash_types::Value;

// ---------------------------------------------------------------------
// Region algebra
// ---------------------------------------------------------------------

fn interval_strategy() -> impl Strategy<Value = Interval> {
    (0i64..100, 0i64..100)
        .prop_map(|(a, b)| Interval::closed(Value::Int(a.min(b)), Value::Int(a.max(b))))
}

/// A box over up to two attributes `x`, `y`.
fn box_strategy() -> impl Strategy<Value = PredBox> {
    (
        proptest::option::of(interval_strategy()),
        proptest::option::of(interval_strategy()),
    )
        .prop_map(|(x, y)| {
            let mut b = PredBox::all();
            if let Some(ix) = x {
                b.constrain("t.x", ix);
            }
            if let Some(iy) = y {
                b.constrain("t.y", iy);
            }
            b
        })
}

fn region_strategy() -> impl Strategy<Value = Region> {
    proptest::collection::vec(box_strategy(), 1..4).prop_map(|boxes| {
        boxes
            .into_iter()
            .fold(Region::empty(), |acc, b| acc.union(&Region::from_box(b)))
    })
}

/// Evaluate membership of a lattice point.
fn contains(r: &Region, x: i64, y: i64) -> bool {
    r.matches(|attr| match attr {
        "t.x" => Some(Value::Int(x)),
        "t.y" => Some(Value::Int(y)),
        _ => None,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn difference_is_pointwise_correct(a in region_strategy(), b in region_strategy()) {
        let d = a.difference(&b);
        // Spot-check a lattice grid.
        for x in (0..100).step_by(7) {
            for y in (0..100).step_by(7) {
                let expect = contains(&a, x, y) && !contains(&b, x, y);
                prop_assert_eq!(contains(&d, x, y), expect, "point ({}, {})", x, y);
            }
        }
    }

    #[test]
    fn union_is_pointwise_correct(a in region_strategy(), b in region_strategy()) {
        let u = a.union(&b);
        for x in (0..100).step_by(9) {
            for y in (0..100).step_by(9) {
                let expect = contains(&a, x, y) || contains(&b, x, y);
                prop_assert_eq!(contains(&u, x, y), expect, "point ({}, {})", x, y);
            }
        }
        // Union boxes stay pairwise disjoint (representation invariant).
        let boxes = u.boxes();
        for i in 0..boxes.len() {
            for j in i + 1..boxes.len() {
                prop_assert!(!boxes[i].intersects(&boxes[j]));
            }
        }
    }

    #[test]
    fn subset_agrees_with_difference(a in region_strategy(), b in region_strategy()) {
        prop_assert_eq!(a.is_subset(&b), a.difference(&b).is_empty());
    }

    #[test]
    fn classifier_agrees_with_pointwise_semantics(
        r in region_strategy(),
        c in region_strategy(),
    ) {
        let case = ReuseCase::classify(&r, &c);
        // Derive the ground truth from lattice points.
        let mut r_minus_c = false;
        let mut c_minus_r = false;
        let mut both = false;
        for x in (0..100).step_by(3) {
            for y in (0..100).step_by(3) {
                let in_r = contains(&r, x, y);
                let in_c = contains(&c, x, y);
                r_minus_c |= in_r && !in_c;
                c_minus_r |= in_c && !in_r;
                both |= in_r && in_c;
            }
        }
        // The classifier works on exact region algebra; lattice sampling can
        // miss thin slivers, so check implications rather than equality.
        match case {
            ReuseCase::Exact => {
                prop_assert!(!r_minus_c && !c_minus_r);
            }
            ReuseCase::Subsuming => prop_assert!(!r_minus_c),
            ReuseCase::Partial => prop_assert!(!c_minus_r),
            ReuseCase::Overlapping => {}
            ReuseCase::Disjoint => prop_assert!(!both),
        }
    }

    #[test]
    fn coalesce_preserves_semantics(a in region_strategy()) {
        let coalesced = a.clone().coalesced();
        for x in (0..100).step_by(5) {
            for y in (0..100).step_by(5) {
                prop_assert_eq!(contains(&a, x, y), contains(&coalesced, x, y));
            }
        }
        prop_assert!(coalesced.boxes().len() <= a.boxes().len());
    }
}

// ---------------------------------------------------------------------
// Hash table vs HashMap model
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Probe(u64),
    Upsert(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..64, 0u64..1000).prop_map(|(k, v)| Op::Insert(k, v)),
        (0u64..64).prop_map(Op::Probe),
        (0u64..64).prop_map(Op::Upsert),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn extendible_ht_matches_model(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut ht: ExtendibleHashTable<u64> = ExtendibleHashTable::new(8);
        let mut model: HashMap<u64, Vec<u64>> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    ht.insert(k, v);
                    model.entry(k).or_default().push(v);
                }
                Op::Probe(k) => {
                    let got: Vec<u64> = ht.probe(k).copied().collect();
                    let want = model.get(&k).cloned().unwrap_or_default();
                    prop_assert_eq!(got.len(), want.len(), "entry count under key {}", k);
                    prop_assert_eq!(
                        got.iter().sum::<u64>(),
                        want.iter().sum::<u64>(),
                        "value sum under key {}",
                        k
                    );
                }
                Op::Upsert(k) => {
                    // `upsert` bumps *one* matching entry (which one depends
                    // on chain order after lazy splits), so the model tracks
                    // the per-key SUM — the invariant aggregation relies on.
                    ht.upsert(k, || 1u64, |v| *v += 1);
                    let vs = model.entry(k).or_default();
                    if vs.is_empty() {
                        vs.push(1);
                    } else {
                        *vs.last_mut().expect("non-empty") += 1;
                    }
                }
            }
        }
        prop_assert_eq!(ht.len(), model.values().map(Vec::len).sum::<usize>());
        prop_assert_eq!(
            ht.distinct_keys(),
            model.values().filter(|v| !v.is_empty()).count()
        );
    }
}

// ---------------------------------------------------------------------
// Optimizer vs never-share on random queries
// ---------------------------------------------------------------------

mod optimizer_props {
    use super::*;
    use hashstash::{Database, EngineStrategy};
    use hashstash_plan::{AggExpr, AggFunc, QueryBuilder, QuerySpec};
    use hashstash_storage::tpch::{generate, TpchConfig};

    fn random_query(id: u32, lo: i64, hi: i64, drill: bool) -> QuerySpec {
        let mut b = QueryBuilder::new(id)
            .join(
                "customer",
                "customer.c_custkey",
                "orders",
                "orders.o_custkey",
            )
            .filter(
                "customer.c_age",
                Interval::closed(Value::Int(lo.min(hi)), Value::Int(lo.max(hi))),
            )
            .group_by("customer.c_age")
            .agg(AggExpr::new(AggFunc::Count, "orders.o_orderkey"))
            .agg(AggExpr::new(AggFunc::Avg, "orders.o_totalprice"));
        if drill {
            b = b
                .join(
                    "orders",
                    "orders.o_orderkey",
                    "lineitem",
                    "lineitem.l_orderkey",
                )
                .agg(AggExpr::new(AggFunc::Sum, "lineitem.l_quantity"));
        }
        b.build().expect("valid")
    }

    fn normalized(mut rows: Vec<hashstash_types::Row>) -> Vec<Vec<String>> {
        rows.sort();
        rows.iter()
            .map(|r| {
                r.values()
                    .iter()
                    .map(|v| match v.as_float() {
                        Some(f) => format!("{f:.4}"),
                        None => v.to_string(),
                    })
                    .collect()
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn random_sessions_agree_with_never_share(
            bounds in proptest::collection::vec((18i64..92, 18i64..92, any::<bool>()), 3..6)
        ) {
            let catalog = generate(TpchConfig::new(0.002, 555));
            let mut hs = Database::open(catalog.clone()).session();
            let mut ns = Database::builder(catalog)
                .strategy(EngineStrategy::NoReuse)
                .build()
                .session();
            for (i, (lo, hi, drill)) in bounds.iter().enumerate() {
                let q = random_query(i as u32, *lo, *hi, *drill);
                let got = normalized(hs.execute(&q).unwrap().rows);
                let want = normalized(ns.execute(&q).unwrap().rows);
                prop_assert_eq!(got, want, "divergence at query {}", i);
            }
        }
    }
}
