//! Build-equivalence battery: a partitioned parallel build must produce a
//! table **byte-identical** to the serial build — same arena order, same
//! collision-chain links, same directory heads and lazy-split depths, same
//! footprint bytes and statistics — at any worker count, for random row
//! counts, key distributions, and tuple widths. Cached hash tables are the
//! reuse currency: if any of this drifted, every downstream exact/subsuming/
//! mutating reuse decision (fingerprint dedup, footprint accounting, probe
//! output order) would silently change with the `PARALLELISM` knob.
//!
//! Serial references are built through the *real* serial code paths the
//! executor uses (`reserve` + `insert` loop for joins, `with_capacity` +
//! `insert` loop for shared tagged builds, `upsert_where` loop for
//! aggregates), not through the helper's own one-worker arm — so these
//! properties pin the parallel helpers against the executor's ground truth.

use hashstash_exec::parallel::{build_grouped_partitioned, build_multimap_partitioned};
use hashstash_hashtable::ExtendibleHashTable;
use proptest::prelude::*;

const WORKER_COUNTS: [usize; 3] = [2, 4, 8];

/// Random key sequences covering the shapes that stress different parts of
/// the layout machinery: dense distinct keys, heavy duplicates (long
/// chains), clustered low bits (bucket skew + stale-family splits), hashed
/// spread, and a single all-equal chain.
fn key_vecs() -> BoxedStrategy<Vec<u64>> {
    prop_oneof![
        (0usize..4000).prop_map(|n| (0..n as u64).collect()),
        (0usize..4000, 1u64..50).prop_map(|(n, m)| (0..n as u64).map(|i| i % m).collect()),
        (0usize..4000, 0u32..6).prop_map(|(n, k)| (0..n as u64).map(|i| i << k).collect()),
        (0usize..4000).prop_map(|n| {
            (0..n as u64)
                .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .collect()
        }),
        (0usize..2000).prop_map(|n| vec![42u64; n]),
    ]
    .boxed()
}

fn values_of(keys: &[u64]) -> Vec<u64> {
    (0..keys.len() as u64).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Join-build path (`exec.rs`): `new` + `reserve` + row-order inserts
    // vs. the partitioned build at 2/4/8 workers.
    #[test]
    fn join_build_partitioned_is_byte_identical(keys in key_vecs(), width in 8usize..64) {
        let mut serial = ExtendibleHashTable::new(width);
        serial.reserve(keys.len());
        for (k, v) in keys.iter().copied().zip(values_of(&keys)) {
            serial.insert(k, v);
        }
        for workers in WORKER_COUNTS {
            let mut par = ExtendibleHashTable::new(width);
            build_multimap_partitioned(workers, &mut par, keys.clone(), values_of(&keys));
            prop_assert!(
                par.layout_eq(&serial),
                "join build diverged at {} workers (n={}, width={}, serial stats {:?} vs {:?})",
                workers, keys.len(), width, serial.stats(), par.stats()
            );
        }
    }

    // Shared-plan tagged-build path (`shared.rs`): `with_capacity` +
    // row-order inserts (no explicit reserve) vs. the partitioned build on
    // an identically constructed table.
    #[test]
    fn shared_build_partitioned_is_byte_identical(keys in key_vecs(), width in 8usize..64) {
        let mut serial = ExtendibleHashTable::with_capacity(width, keys.len());
        for (k, v) in keys.iter().copied().zip(values_of(&keys)) {
            serial.insert(k, v);
        }
        for workers in WORKER_COUNTS {
            let mut par = ExtendibleHashTable::with_capacity(width, keys.len());
            build_multimap_partitioned(workers, &mut par, keys.clone(), values_of(&keys));
            prop_assert!(
                par.layout_eq(&serial),
                "shared tagged build diverged at {} workers (n={}, width={})",
                workers, keys.len(), width
            );
        }
    }

    // Aggregate-build path (`exec.rs`): the serial `upsert_where` loop —
    // incremental directory growth, lookup-triggered lazy splits, per-group
    // floating-point folds in row order — vs. the key-partitioned grouped
    // build plus structural replay (`touch` per row, `insert` per
    // group-creating row). Group keys deliberately collide on the 64-bit
    // hash (`key = gid % collide`) so `matches` disambiguation is covered.
    #[test]
    fn agg_build_partitioned_is_byte_identical(
        shape in (0usize..3000, 1u64..200, 1u64..16),
        width in 8usize..64,
    ) {
        let (n, groups, collide) = shape;
        // (hash key, logical group id) per row; values fold as float sums,
        // which detect any deviation from the serial accumulation order.
        let rows: Vec<(u64, u64)> = (0..n as u64)
            .map(|i| {
                let gid = i.wrapping_mul(0x9e37_79b9) % groups;
                (gid % collide.min(groups), gid)
            })
            .collect();
        let val = |i: usize| (i as f64) * 0.7 - 3.0;

        let mut serial = ExtendibleHashTable::new(width);
        let mut serial_inserts = 0u64;
        let mut serial_updates = 0u64;
        for (i, &(key, gid)) in rows.iter().enumerate() {
            let created = serial.upsert_where(
                key,
                |p: &(u64, f64, u64)| p.0 == gid,
                || (gid, val(i), 1),
                |p| {
                    p.1 += val(i);
                    p.2 += 1;
                },
            );
            if created {
                serial_inserts += 1;
            } else {
                serial_updates += 1;
            }
        }

        let keys: Vec<u64> = rows.iter().map(|&(k, _)| k).collect();
        for workers in WORKER_COUNTS {
            let gb = build_grouped_partitioned(
                workers,
                &keys,
                |i: usize, p: &(u64, f64, u64)| p.0 == rows[i].1,
                |i: usize| (rows[i].1, val(i), 1),
                |i: usize, p: &mut (u64, f64, u64)| {
                    p.1 += val(i);
                    p.2 += 1;
                },
            );
            prop_assert_eq!(gb.inserts, serial_inserts, "{} workers", workers);
            prop_assert_eq!(gb.updates, serial_updates, "{} workers", workers);
            let mut par = ExtendibleHashTable::new(width);
            let mut merged = gb.groups.into_iter().peekable();
            for (i, &key) in keys.iter().enumerate() {
                if merged.peek().is_some_and(|g| g.first_row == i) {
                    let g = merged.next().expect("peeked");
                    par.touch(g.key);
                    par.insert(g.key, g.payload);
                } else {
                    par.touch(key);
                }
            }
            prop_assert!(merged.peek().is_none(), "all groups replayed");
            prop_assert!(
                par.layout_eq(&serial),
                "agg build diverged at {} workers (n={}, groups={}, collide={}, width={})",
                workers, n, groups, collide, width
            );
        }
    }
}
