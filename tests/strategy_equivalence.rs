//! Cross-crate integration tests: every reuse policy must produce the
//! same answers as plain execution, across whole exploration sessions and
//! batches, with and without garbage collection — and the facade must be
//! deterministic: two independently built databases replay a trace with
//! identical rows, reuse decisions and cache statistics. (These tests
//! absorbed the coverage of the deleted pre-0.2 `Engine` shim, which used
//! to be checked against the facade decision-for-decision.)

use hashstash::{BatchMode, Database, EngineStrategy};
use hashstash_cache::GcConfig;
use hashstash_storage::tpch::{generate, TpchConfig};
use hashstash_types::Row;
use hashstash_workload::session::exp2_session;
use hashstash_workload::trace::{batches, generate_trace, ReusePotential, TraceConfig};

fn catalog() -> hashstash_storage::Catalog {
    generate(TpchConfig::new(0.004, 1234))
}

fn normalized(mut rows: Vec<Row>) -> Vec<Vec<String>> {
    rows.sort();
    rows.iter()
        .map(|r| {
            r.values()
                .iter()
                .map(|v| match v.as_float() {
                    // Float aggregation order differs between plans; compare
                    // with fixed precision.
                    Some(f) => format!("{f:.4}"),
                    None => v.to_string(),
                })
                .collect()
        })
        .collect()
}

#[test]
fn full_session_equivalence_across_strategies() {
    let trace = generate_trace(TraceConfig {
        reuse: ReusePotential::High,
        queries: 20,
        seed: 9,
        structural_prob: 0.3,
    });
    let reference: Vec<_> = {
        let mut session = Database::builder(catalog())
            .strategy(EngineStrategy::NoReuse)
            .build()
            .session();
        trace
            .iter()
            .map(|tq| normalized(session.execute(&tq.query).unwrap().rows))
            .collect()
    };
    for strategy in [
        EngineStrategy::HashStash,
        EngineStrategy::Materialized,
        EngineStrategy::AlwaysShare,
    ] {
        let mut session = Database::builder(catalog())
            .strategy(strategy)
            .build()
            .session();
        for (i, tq) in trace.iter().enumerate() {
            let got = normalized(session.execute(&tq.query).unwrap().rows);
            assert_eq!(got, reference[i], "{strategy:?} diverges at query {i}");
        }
    }
}

/// The facade is deterministic: two independently built databases with the
/// same strategy replay a trace with identical rows, identical reuse
/// decisions at every pipeline breaker, and identical cache statistics.
/// (This is the coverage the deleted `Engine`-shim equivalence test used
/// to provide, now expressed entirely at the facade level.)
#[test]
fn facade_is_deterministic_across_instances() {
    let trace = generate_trace(TraceConfig {
        reuse: ReusePotential::High,
        queries: 12,
        seed: 21,
        structural_prob: 0.25,
    });
    for strategy in [
        EngineStrategy::HashStash,
        EngineStrategy::NoReuse,
        EngineStrategy::Materialized,
        EngineStrategy::AlwaysShare,
        EngineStrategy::NeverShare,
    ] {
        let db_a = Database::builder(catalog()).strategy(strategy).build();
        let db_b = Database::builder(catalog()).strategy(strategy).build();
        let mut a = db_a.session();
        let mut b = db_b.session();
        for (i, tq) in trace.iter().enumerate() {
            let ra = a.execute(&tq.query).unwrap();
            let rb = b.execute(&tq.query).unwrap();
            assert_eq!(
                normalized(ra.rows),
                normalized(rb.rows),
                "{strategy:?} rows diverge at query {i}"
            );
            // Same reuse decisions at every pipeline breaker.
            assert_eq!(
                ra.decisions, rb.decisions,
                "{strategy:?} reuse decisions diverge at query {i}"
            );
        }
        // Same cache behavior overall.
        assert_eq!(
            db_a.cache_stats().publishes,
            db_b.cache_stats().publishes,
            "{strategy:?} publish counts diverge"
        );
        assert_eq!(
            db_a.cache_stats().reuses,
            db_b.cache_stats().reuses,
            "{strategy:?} reuse counts diverge"
        );
    }
}

/// Builder defaults must match the documented invariants (and the old
/// `EngineConfig::default()` semantics).
#[test]
fn builder_default_invariants() {
    let db = Database::builder(catalog()).build();
    assert_eq!(db.policy().name(), "hashstash", "default policy");
    assert!(!db.policy().materialize());
    assert!(!db.policy().prefer_reuse());
    assert_eq!(db.cache_stats().publishes, 0, "cache starts empty");
    assert_eq!(db.cache_stats().bytes, 0);
    assert_eq!(db.temp_stats().publishes, 0, "temp cache starts empty");
    assert_eq!(db.total_stats().queries, 0);

    // The five named strategies map onto the five built-in policies.
    for (strategy, name) in [
        (EngineStrategy::HashStash, "hashstash"),
        (EngineStrategy::NoReuse, "no-reuse"),
        (EngineStrategy::Materialized, "materialized"),
        (EngineStrategy::AlwaysShare, "always-share"),
        (EngineStrategy::NeverShare, "never-share"),
    ] {
        assert_eq!(strategy.policy().name(), name);
    }
}

#[test]
fn exp2_session_equivalence() {
    let session_steps = exp2_session();
    let reference: Vec<_> = {
        let mut session = Database::builder(catalog())
            .strategy(EngineStrategy::NoReuse)
            .build()
            .session();
        session_steps
            .iter()
            .map(|s| normalized(session.execute(&s.query).unwrap().rows))
            .collect()
    };
    let db = Database::open(catalog());
    let mut session = db.session();
    for (i, s) in session_steps.iter().enumerate() {
        let got = normalized(session.execute(&s.query).unwrap().rows);
        assert_eq!(got, reference[i], "{} diverges", s.name);
    }
    assert!(
        db.cache_stats().reuses >= 3,
        "the session must exercise reuse (got {})",
        db.cache_stats().reuses
    );
}

#[test]
fn batch_modes_equivalent_over_trace_batches() {
    let trace = generate_trace(TraceConfig {
        reuse: ReusePotential::Medium,
        queries: 16,
        seed: 31,
        structural_prob: 0.0,
    });
    for batch in batches(&trace, 8) {
        let reference: Vec<_> = {
            let mut session = Database::builder(catalog())
                .strategy(EngineStrategy::NoReuse)
                .build()
                .session();
            batch
                .iter()
                .map(|q| normalized(session.execute(q).unwrap().rows))
                .collect()
        };
        let mut session = Database::open(catalog()).session();
        let results = session
            .execute_batch(&batch, BatchMode::SharedWithReuse)
            .unwrap();
        for (i, r) in results.iter().enumerate() {
            assert_eq!(
                normalized(r.rows.clone()),
                reference[i],
                "shared batch diverges at query {i}"
            );
        }
    }
}

#[test]
fn gc_does_not_change_answers() {
    let trace = generate_trace(TraceConfig {
        reuse: ReusePotential::High,
        queries: 16,
        seed: 5,
        structural_prob: 0.2,
    });
    let reference: Vec<_> = {
        let mut session = Database::builder(catalog())
            .strategy(EngineStrategy::NoReuse)
            .build()
            .session();
        trace
            .iter()
            .map(|tq| normalized(session.execute(&tq.query).unwrap().rows))
            .collect()
    };
    // Brutal budget: 64 KB forces constant eviction.
    let db = Database::builder(catalog())
        .gc(GcConfig {
            budget_bytes: Some(64 * 1024),
            ..GcConfig::default()
        })
        .build();
    let mut session = db.session();
    for (i, tq) in trace.iter().enumerate() {
        let got = normalized(session.execute(&tq.query).unwrap().rows);
        assert_eq!(got, reference[i], "GC engine diverges at query {i}");
        assert!(db.cache_stats().bytes <= 64 * 1024);
    }
    assert!(db.cache_stats().evictions > 0, "budget forced evictions");
}

#[test]
fn zero_budget_cache_still_correct() {
    let db = Database::builder(catalog()).gc_budget(0).build();
    let mut session = db.session();
    let trace = generate_trace(TraceConfig {
        reuse: ReusePotential::High,
        queries: 6,
        seed: 77,
        structural_prob: 0.0,
    });
    let mut reference = Database::builder(catalog())
        .strategy(EngineStrategy::NoReuse)
        .build()
        .session();
    for tq in &trace {
        let got = normalized(session.execute(&tq.query).unwrap().rows);
        let want = normalized(reference.execute(&tq.query).unwrap().rows);
        assert_eq!(got, want);
    }
}
