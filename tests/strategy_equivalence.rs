//! Cross-crate integration tests: every reuse strategy must produce the
//! same answers as plain execution, across whole exploration sessions and
//! batches, with and without garbage collection.

use hashstash::engine::BatchMode;
use hashstash::{Engine, EngineConfig, EngineStrategy};
use hashstash_cache::GcConfig;
use hashstash_storage::tpch::{generate, TpchConfig};
use hashstash_types::Row;
use hashstash_workload::session::exp2_session;
use hashstash_workload::trace::{batches, generate_trace, ReusePotential, TraceConfig};

fn catalog() -> hashstash_storage::Catalog {
    generate(TpchConfig::new(0.004, 1234))
}

fn normalized(mut rows: Vec<Row>) -> Vec<Vec<String>> {
    rows.sort();
    rows.iter()
        .map(|r| {
            r.values()
                .iter()
                .map(|v| match v.as_float() {
                    // Float aggregation order differs between plans; compare
                    // with fixed precision.
                    Some(f) => format!("{f:.4}"),
                    None => v.to_string(),
                })
                .collect()
        })
        .collect()
}

#[test]
fn full_session_equivalence_across_strategies() {
    let trace = generate_trace(TraceConfig {
        reuse: ReusePotential::High,
        queries: 20,
        seed: 9,
        structural_prob: 0.3,
    });
    let reference: Vec<_> = {
        let mut engine = Engine::new(catalog(), EngineConfig::with_strategy(EngineStrategy::NoReuse));
        trace
            .iter()
            .map(|tq| normalized(engine.execute(&tq.query).unwrap().rows))
            .collect()
    };
    for strategy in [
        EngineStrategy::HashStash,
        EngineStrategy::Materialized,
        EngineStrategy::AlwaysShare,
    ] {
        let mut engine = Engine::new(catalog(), EngineConfig::with_strategy(strategy));
        for (i, tq) in trace.iter().enumerate() {
            let got = normalized(engine.execute(&tq.query).unwrap().rows);
            assert_eq!(got, reference[i], "{strategy:?} diverges at query {i}");
        }
    }
}

#[test]
fn exp2_session_equivalence() {
    let session = exp2_session();
    let reference: Vec<_> = {
        let mut engine = Engine::new(catalog(), EngineConfig::with_strategy(EngineStrategy::NoReuse));
        session
            .iter()
            .map(|s| normalized(engine.execute(&s.query).unwrap().rows))
            .collect()
    };
    let mut engine = Engine::new(catalog(), EngineConfig::default());
    for (i, s) in session.iter().enumerate() {
        let got = normalized(engine.execute(&s.query).unwrap().rows);
        assert_eq!(got, reference[i], "{} diverges", s.name);
    }
    assert!(
        engine.cache_stats().reuses >= 3,
        "the session must exercise reuse (got {})",
        engine.cache_stats().reuses
    );
}

#[test]
fn batch_modes_equivalent_over_trace_batches() {
    let trace = generate_trace(TraceConfig {
        reuse: ReusePotential::Medium,
        queries: 16,
        seed: 31,
        structural_prob: 0.0,
    });
    for batch in batches(&trace, 8) {
        let reference: Vec<_> = {
            let mut engine =
                Engine::new(catalog(), EngineConfig::with_strategy(EngineStrategy::NoReuse));
            batch
                .iter()
                .map(|q| normalized(engine.execute(q).unwrap().rows))
                .collect()
        };
        let mut engine = Engine::new(catalog(), EngineConfig::default());
        let results = engine
            .execute_batch(&batch, BatchMode::SharedWithReuse)
            .unwrap();
        for (i, r) in results.iter().enumerate() {
            assert_eq!(
                normalized(r.rows.clone()),
                reference[i],
                "shared batch diverges at query {i}"
            );
        }
    }
}

#[test]
fn gc_does_not_change_answers() {
    let trace = generate_trace(TraceConfig {
        reuse: ReusePotential::High,
        queries: 16,
        seed: 5,
        structural_prob: 0.2,
    });
    let reference: Vec<_> = {
        let mut engine = Engine::new(catalog(), EngineConfig::with_strategy(EngineStrategy::NoReuse));
        trace
            .iter()
            .map(|tq| normalized(engine.execute(&tq.query).unwrap().rows))
            .collect()
    };
    // Brutal budget: 64 KB forces constant eviction.
    let mut cfg = EngineConfig::default();
    cfg.gc = GcConfig {
        budget_bytes: Some(64 * 1024),
        ..GcConfig::default()
    };
    let mut engine = Engine::new(catalog(), cfg);
    for (i, tq) in trace.iter().enumerate() {
        let got = normalized(engine.execute(&tq.query).unwrap().rows);
        assert_eq!(got, reference[i], "GC engine diverges at query {i}");
        assert!(engine.cache_stats().bytes <= 64 * 1024);
    }
    assert!(engine.cache_stats().evictions > 0, "budget forced evictions");
}

#[test]
fn zero_budget_cache_still_correct() {
    let mut cfg = EngineConfig::default();
    cfg.gc = GcConfig {
        budget_bytes: Some(0),
        ..GcConfig::default()
    };
    let mut engine = Engine::new(catalog(), cfg);
    let trace = generate_trace(TraceConfig {
        reuse: ReusePotential::High,
        queries: 6,
        seed: 77,
        structural_prob: 0.0,
    });
    let mut reference = Engine::new(catalog(), EngineConfig::with_strategy(EngineStrategy::NoReuse));
    for tq in &trace {
        let got = normalized(engine.execute(&tq.query).unwrap().rows);
        let want = normalized(reference.execute(&tq.query).unwrap().rows);
        assert_eq!(got, want);
    }
}
