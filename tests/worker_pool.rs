//! Lifecycle tests for the persistent worker pool: one pool per
//! `Database`, reused across sequential queries, panic containment at the
//! phase boundary, and the core-pinning knob. (Thread-join-on-drop has its
//! own single-test binary, `tests/pool_shutdown.rs`, so nothing else
//! creates threads while it counts them.)

use hashstash::Database;
use hashstash_exec::parallel::{collect_morsels, run_morsels};
use hashstash_exec::{min_parallel_morsels, Scheduler, WorkerPool, MORSEL_ROWS};
use hashstash_plan::{AggExpr, AggFunc, Interval, QueryBuilder, QuerySpec};
use hashstash_storage::tpch::{generate, TpchConfig};
use hashstash_types::Value;

/// Big enough that the orders scan comfortably exceeds the derived
/// morsel fan-out threshold, so queries actually submit pool phases.
fn catalog() -> hashstash_storage::Catalog {
    generate(TpchConfig::new(0.03, 7321))
}

fn q_age(id: u32, lo: i64, hi: i64) -> QuerySpec {
    QueryBuilder::new(id)
        .join(
            "customer",
            "customer.c_custkey",
            "orders",
            "orders.o_custkey",
        )
        .filter(
            "customer.c_age",
            Interval::closed(Value::Int(lo), Value::Int(hi)),
        )
        .group_by("customer.c_age")
        .agg(AggExpr::new(AggFunc::Count, "orders.o_orderkey"))
        .build()
        .unwrap()
}

/// Rows that split into comfortably more morsels than the fan-out
/// threshold requires.
fn engaged_total() -> usize {
    MORSEL_ROWS * (min_parallel_morsels() + 3)
}

/// One database-owned pool serves query after query — no workers are
/// created or destroyed between them, and every parallel query submits
/// phases to the same pool.
#[test]
fn pool_is_reused_across_sequential_queries() {
    let db = Database::builder(catalog()).parallelism(4).build();
    let pool = db.worker_pool();
    assert_eq!(
        pool.worker_count(),
        3,
        "parallelism 4 = the session thread + 3 pool workers"
    );

    let mut session = db.session();
    session.execute(&q_age(1, 20, 60)).unwrap();
    let after_first = pool.jobs_dispatched();
    assert!(
        after_first > 0,
        "a parallel query above the threshold submits pool phases"
    );
    session.execute(&q_age(2, 25, 65)).unwrap();
    assert!(
        db.worker_pool().jobs_dispatched() > after_first,
        "the second query reuses the same pool"
    );
    assert_eq!(db.worker_pool().worker_count(), 3, "no per-query spawning");
    #[cfg(feature = "analysis")]
    db.assert_quiesced();
}

/// A serial database never touches its (empty) pool.
#[test]
fn serial_database_keeps_an_empty_pool() {
    let db = Database::builder(catalog()).parallelism(1).build();
    assert_eq!(db.worker_pool().worker_count(), 0);
    let mut session = db.session();
    session.execute(&q_age(1, 20, 60)).unwrap();
    assert_eq!(
        db.worker_pool().jobs_dispatched(),
        0,
        "serial execution stays on the inline path"
    );
}

/// A panicking morsel poisons only its own phase: the submitting caller
/// gets the original payload, and the same pool immediately serves the
/// next phase — including one submitted by a different "session" thread.
#[test]
fn phase_panic_leaves_the_pool_serving_others() {
    let pool = WorkerPool::new(3, false);
    let sched = Scheduler {
        parallelism: 4,
        pool: Some(&pool),
    };
    let total = engaged_total();

    let outcome = std::panic::catch_unwind(|| {
        run_morsels(sched, total, |r| {
            if r.start >= MORSEL_ROWS {
                panic!("morsel exploded");
            }
            r.len()
        })
    });
    let payload = outcome.expect_err("the panic must reach the submitter");
    assert_eq!(payload.downcast_ref::<&str>(), Some(&"morsel exploded"));
    pool.assert_quiesced();

    // The pool is not poisoned: another thread's phases still drain on it.
    let next: Vec<usize> = std::thread::scope(|s| {
        s.spawn(|| collect_morsels(sched, total, |r| r.collect()))
            .join()
            .expect("clean phase after a panicked one")
    });
    assert_eq!(next, (0..total).collect::<Vec<_>>());
    pool.assert_quiesced();
}

/// The pinning knob is best-effort: results are identical either way, and
/// the pin counter never exceeds the worker count (a sandbox may refuse
/// the affinity syscall — that must not fail the build or the query).
#[test]
fn pinned_pool_is_a_pure_throughput_knob() {
    let baseline = Database::builder(catalog()).parallelism(4).build();
    let pinned = Database::builder(catalog())
        .parallelism(4)
        .pin_workers(true)
        .build();
    assert!(pinned.worker_pool().pins_workers());
    assert!(!baseline.worker_pool().pins_workers());
    assert!(pinned.worker_pool().pinned_workers() <= pinned.worker_pool().worker_count());

    let a = baseline.session().execute(&q_age(1, 20, 60)).unwrap();
    let b = pinned.session().execute(&q_age(1, 20, 60)).unwrap();
    assert_eq!(a.schema, b.schema);
    assert_eq!(a.rows, b.rows, "pinning cannot change results");
}
