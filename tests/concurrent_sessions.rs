//! Stress test for the `Database`/`Session` split: many threads drive
//! sessions against one shared database and must (a) get correct answers
//! and (b) get cache hits from hash tables *other* sessions published.

use std::sync::Arc;
use std::thread;

use hashstash::{Database, EngineStrategy};
use hashstash_plan::{AggExpr, AggFunc, Interval, QueryBuilder, QuerySpec};
use hashstash_storage::tpch::{generate, TpchConfig};
use hashstash_types::{Row, Value};

fn catalog() -> hashstash_storage::Catalog {
    generate(TpchConfig::new(0.003, 4321))
}

fn q_age(id: u32, lo: i64, hi: i64) -> QuerySpec {
    QueryBuilder::new(id)
        .join(
            "customer",
            "customer.c_custkey",
            "orders",
            "orders.o_custkey",
        )
        .filter(
            "customer.c_age",
            Interval::closed(Value::Int(lo), Value::Int(hi)),
        )
        .group_by("customer.c_age")
        .agg(AggExpr::new(AggFunc::Count, "orders.o_orderkey"))
        .build()
        .unwrap()
}

fn normalized(mut rows: Vec<Row>) -> Vec<Vec<String>> {
    rows.sort();
    rows.iter()
        .map(|r| r.values().iter().map(|v| v.to_string()).collect())
        .collect()
}

/// Two threads sharing one `Database` get cache hits from each other's
/// hash tables (the facade-redesign acceptance criterion).
#[test]
fn two_sessions_reuse_each_others_tables() {
    let db = Database::open(catalog());

    // Thread A runs a query; thread B (spawned after A joins) runs the
    // *same* query from a brand-new session and must reuse A's tables.
    let db_a = Arc::clone(&db);
    // Raw spawns model independent client sessions (see clippy.toml).
    #[allow(clippy::disallowed_methods)]
    thread::spawn(move || {
        let mut session = db_a.session();
        session.execute(&q_age(1, 20, 60)).unwrap();
    })
    .join()
    .unwrap();
    assert!(db.cache_stats().publishes > 0, "thread A published tables");

    let db_b = Arc::clone(&db);
    #[allow(clippy::disallowed_methods)]
    let reused = thread::spawn(move || {
        let mut session = db_b.session();
        let r = session.execute(&q_age(2, 20, 60)).unwrap();
        r.decisions.iter().any(|(_, c)| c.is_some())
    })
    .join()
    .unwrap();
    assert!(reused, "thread B reused thread A's hash tables");
    assert!(db.cache_stats().reuses > 0);
}

/// Many concurrent sessions over overlapping predicates: every thread's
/// answers match a sequential no-reuse reference, and after a warm-up
/// query every thread sees reuse — across sessions, not just within one.
#[test]
fn concurrent_sessions_stress() {
    const THREADS: usize = 4;
    const QUERIES_PER_THREAD: usize = 6;

    // Shared database under test plus a sequential reference.
    let db = Database::open(catalog());
    let mut reference = Database::builder(catalog())
        .strategy(EngineStrategy::NoReuse)
        .build()
        .session();

    // The query grid every thread executes (identical across threads, so
    // whichever thread runs a shape first seeds all the others).
    let grid: Vec<QuerySpec> = (0..QUERIES_PER_THREAD as u32)
        .map(|i| q_age(i, 20 + (i as i64 % 3) * 5, 60 + (i as i64 % 3) * 5))
        .collect();
    let expected: Vec<_> = grid
        .iter()
        .map(|q| normalized(reference.execute(q).unwrap().rows))
        .collect();
    let expected = Arc::new(expected);
    let grid = Arc::new(grid);

    // Warm the cache so even the globally-first query of the parallel
    // phase has a candidate.
    db.session().execute(&grid[0]).unwrap();

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = Arc::clone(&db);
            let grid = Arc::clone(&grid);
            let expected = Arc::clone(&expected);
            #[allow(clippy::disallowed_methods)]
            thread::spawn(move || {
                let mut session = db.session();
                let mut reused_queries = 0usize;
                // Stagger starting offsets so threads interleave shapes.
                for k in 0..grid.len() {
                    let i = (k + t) % grid.len();
                    let r = session.execute(&grid[i]).unwrap();
                    assert_eq!(
                        normalized(r.rows),
                        expected[i],
                        "thread {t} query {i} diverges"
                    );
                    if r.decisions.iter().any(|(_, c)| c.is_some()) {
                        reused_queries += 1;
                    }
                }
                assert_eq!(session.stats().queries, grid.len() as u64);
                reused_queries
            })
        })
        .collect();

    let mut total_reused = 0;
    for h in handles {
        let reused = h.join().expect("thread panicked");
        assert!(reused > 0, "every thread must hit the shared cache");
        total_reused += reused;
    }
    assert!(
        total_reused >= THREADS,
        "cross-session reuse happened on every thread (got {total_reused})"
    );
    assert!(db.cache_stats().reuses >= total_reused as u64);
    assert_eq!(
        db.total_stats().queries,
        (THREADS * QUERIES_PER_THREAD) as u64 + 1,
        "database totals aggregate every session"
    );
}

/// Eight sessions hammering one parallelism-4 database share its one
/// worker pool: phases from different sessions interleave on the same
/// three workers (no per-session or per-phase spawning), answers stay
/// correct, and the pool is quiesced once the clients join.
#[test]
fn eight_sessions_share_one_worker_pool() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 3;

    // Big enough that scans clear the derived morsel threshold — the
    // sessions must actually submit pool phases, not just inline work.
    let big = || generate(TpchConfig::new(0.03, 977));
    let db = Database::builder(big()).parallelism(4).build();
    let mut reference = Database::builder(big())
        .strategy(EngineStrategy::NoReuse)
        .parallelism(1)
        .build()
        .session();
    let shapes: Vec<QuerySpec> = (0..4u32)
        .map(|i| q_age(i, 18 + i as i64 * 6, 52 + i as i64 * 8))
        .collect();
    let expected: Vec<_> = shapes
        .iter()
        .map(|q| normalized(reference.execute(q).unwrap().rows))
        .collect();
    let shapes = Arc::new(shapes);
    let expected = Arc::new(expected);

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = Arc::clone(&db);
            let shapes = Arc::clone(&shapes);
            let expected = Arc::clone(&expected);
            #[allow(clippy::disallowed_methods)]
            thread::spawn(move || {
                let mut session = db.session();
                for round in 0..ROUNDS {
                    for k in 0..shapes.len() {
                        let i = (k + t) % shapes.len();
                        let r = session.execute(&shapes[i]).unwrap();
                        assert_eq!(
                            normalized(r.rows),
                            expected[i],
                            "thread {t} round {round} query {i}"
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("session thread panicked");
    }

    let pool = db.worker_pool();
    assert_eq!(pool.worker_count(), 3, "one pool, never grown per session");
    assert!(
        pool.jobs_dispatched() > 0,
        "sessions submitted phases to the shared pool"
    );
    pool.assert_quiesced();
    #[cfg(feature = "analysis")]
    db.assert_quiesced();
}

/// Concurrency under memory pressure: GC evictions racing with reuse from
/// several sessions must never corrupt answers.
#[test]
fn concurrent_sessions_with_tight_gc_budget() {
    const THREADS: usize = 3;
    let db = Database::builder(catalog()).gc_budget(64 * 1024).build();
    let mut reference = Database::builder(catalog())
        .strategy(EngineStrategy::NoReuse)
        .build()
        .session();
    let shapes: Vec<QuerySpec> = (0..5u32)
        .map(|i| q_age(i, 18 + i as i64 * 7, 40 + i as i64 * 9))
        .collect();
    let expected: Vec<_> = shapes
        .iter()
        .map(|q| normalized(reference.execute(q).unwrap().rows))
        .collect();
    let shapes = Arc::new(shapes);
    let expected = Arc::new(expected);

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = Arc::clone(&db);
            let shapes = Arc::clone(&shapes);
            let expected = Arc::clone(&expected);
            #[allow(clippy::disallowed_methods)]
            thread::spawn(move || {
                let mut session = db.session();
                for round in 0..3 {
                    for (i, q) in shapes.iter().enumerate() {
                        let r = session.execute(q).unwrap();
                        assert_eq!(
                            normalized(r.rows),
                            expected[i],
                            "thread {t} round {round} query {i}"
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("thread panicked");
    }
    assert!(db.cache_stats().bytes <= 64 * 1024, "budget holds");
}
